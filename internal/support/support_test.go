package support

import (
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

func TestSubgraphKeyAutomorphismCollapse(t *testing.T) {
	// Pattern: path a-a. Embedding maps (1,2) and (2,1) occupy the same
	// subgraph and must key identically.
	p := testutil.PathGraph(0, 0)
	e1 := Embedding{Map: []graph.V{1, 2}}
	e2 := Embedding{Map: []graph.V{2, 1}}
	if SubgraphKey(p.Edges(), e1) != SubgraphKey(p.Edges(), e2) {
		t.Error("automorphic embeddings should share a subgraph key")
	}
	e3 := Embedding{Map: []graph.V{1, 3}}
	if SubgraphKey(p.Edges(), e1) == SubgraphKey(p.Edges(), e3) {
		t.Error("different subgraphs should key differently")
	}
	e4 := Embedding{GID: 1, Map: []graph.V{1, 2}}
	if SubgraphKey(p.Edges(), e1) == SubgraphKey(p.Edges(), e4) {
		t.Error("same vertices in different transaction graphs differ")
	}
}

func TestSubgraphKeyEdgeless(t *testing.T) {
	e1 := Embedding{Map: []graph.V{5}}
	e2 := Embedding{Map: []graph.V{5}}
	e3 := Embedding{Map: []graph.V{6}}
	if SubgraphKey(nil, e1) != SubgraphKey(nil, e2) {
		t.Error("same vertex should key identically")
	}
	if SubgraphKey(nil, e1) == SubgraphKey(nil, e3) {
		t.Error("different vertices should key differently")
	}
}

func TestSetDedupAndSupport(t *testing.T) {
	p := testutil.PathGraph(0, 0)
	s := NewSet(p.Edges(), 0)
	if !s.Add(Embedding{Map: []graph.V{1, 2}}) {
		t.Error("first add should be new")
	}
	// The automorphic map is a distinct map on the same subgraph: stored
	// (extension needs it) but not counted twice.
	if !s.Add(Embedding{Map: []graph.V{2, 1}}) {
		t.Error("automorphic map should still be stored")
	}
	if s.Add(Embedding{Map: []graph.V{1, 2}}) {
		t.Error("exact duplicate map should dedup")
	}
	s.Add(Embedding{Map: []graph.V{3, 4}})
	if s.Support() != 2 {
		t.Errorf("Support = %d, want 2 (distinct subgraphs)", s.Support())
	}
	if len(s.Embeddings()) != 3 {
		t.Errorf("stored = %d, want 3 (all maps)", len(s.Embeddings()))
	}
}

func TestSetLimit(t *testing.T) {
	p := testutil.PathGraph(0, 0)
	s := NewSet(p.Edges(), 2)
	for i := graph.V(0); i < 10; i += 2 {
		s.Add(Embedding{Map: []graph.V{i, i + 1}})
	}
	if s.Support() != 5 {
		t.Errorf("Support = %d, want 5 (count keeps going)", s.Support())
	}
	if len(s.Embeddings()) != 2 {
		t.Errorf("stored = %d, want 2 (capped)", len(s.Embeddings()))
	}
	if !s.Truncated() {
		t.Error("Truncated should be true")
	}
}

func TestGraphSupportAndMeasures(t *testing.T) {
	p := testutil.PathGraph(0, 0)
	s := NewSet(p.Edges(), 0)
	s.Add(Embedding{GID: 0, Map: []graph.V{0, 1}})
	s.Add(Embedding{GID: 0, Map: []graph.V{1, 2}})
	s.Add(Embedding{GID: 2, Map: []graph.V{0, 1}})
	if s.GraphSupport() != 2 {
		t.Errorf("GraphSupport = %d, want 2", s.GraphSupport())
	}
	if s.Count(GraphCount) != 2 || s.Count(EmbeddingCount) != 3 {
		t.Error("Count measures wrong")
	}
}

func TestMNI(t *testing.T) {
	p := testutil.PathGraph(0, 1)
	s := NewSet(p.Edges(), 0)
	// Vertex 0 of the pattern maps to {0}, vertex 1 maps to {1,2}: MNI = 1.
	s.Add(Embedding{Map: []graph.V{0, 1}})
	s.Add(Embedding{Map: []graph.V{0, 2}})
	if got := s.MNI(); got != 1 {
		t.Errorf("MNI = %d, want 1", got)
	}
	if s.Count(MNICount) != 1 {
		t.Error("Count(MNICount) wrong")
	}
	empty := NewSet(p.Edges(), 0)
	if empty.MNI() != 0 {
		t.Error("empty MNI should be 0")
	}
}

func TestCountEmbeddingsSingleGraph(t *testing.T) {
	// Path graph 0-0-0-0: pattern 0-0 has 3 distinct edge subgraphs.
	g := testutil.PathGraph(0, 0, 0, 0)
	p := testutil.PathGraph(0, 0)
	s := CountEmbeddings(p, []*graph.Graph{g}, 0)
	if s.Support() != 3 {
		t.Errorf("Support = %d, want 3", s.Support())
	}
}

func TestCountEmbeddingsTransaction(t *testing.T) {
	g1 := testutil.PathGraph(0, 1)
	g2 := testutil.PathGraph(0, 1, 0)
	g3 := testutil.PathGraph(2, 2)
	p := testutil.PathGraph(0, 1)
	s := CountEmbeddings(p, []*graph.Graph{g1, g2, g3}, 0)
	if s.GraphSupport() != 2 {
		t.Errorf("GraphSupport = %d, want 2", s.GraphSupport())
	}
	if s.Support() != 3 { // one in g1, two in g2
		t.Errorf("Support = %d, want 3", s.Support())
	}
}

// TestGraphSupportExactPastStorageCap is the regression test for the
// truncation undercount: GraphSupport (and Count(GraphCount)) must see
// every graph an embedding was Added from, even once MaxEmbeddings has
// stopped storing maps. The pre-fix code scanned only stored
// embeddings.
func TestGraphSupportExactPastStorageCap(t *testing.T) {
	p := testutil.PathGraph(0, 0)
	s := NewSet(p.Edges(), 1) // store at most one embedding
	for gid := int32(0); gid < 4; gid++ {
		s.Add(Embedding{GID: gid, Map: []graph.V{0, 1}})
	}
	if !s.Truncated() {
		t.Fatal("cap of 1 with 4 adds should truncate")
	}
	if s.Len() != 1 {
		t.Fatalf("stored %d, want 1", s.Len())
	}
	if got := s.GraphSupport(); got != 4 {
		t.Errorf("GraphSupport = %d, want 4 (exact past the cap)", got)
	}
	if got := s.Count(GraphCount); got != 4 {
		t.Errorf("Count(GraphCount) = %d, want 4", got)
	}
	if got := s.Support(); got != 4 {
		t.Errorf("Support = %d, want 4 (exact past the cap)", got)
	}
}

// TestMNISampleBasedPastStorageCap documents that MNI is computed over
// the stored sample once the cap truncates, i.e. it is a lower bound.
func TestMNISampleBasedPastStorageCap(t *testing.T) {
	p := testutil.PathGraph(0, 1)
	s := NewSet(p.Edges(), 2)
	s.Add(Embedding{Map: []graph.V{0, 1}})
	s.Add(Embedding{Map: []graph.V{0, 2}})
	s.Add(Embedding{Map: []graph.V{0, 3}}) // counted, not stored
	if got := s.MNI(); got != 1 {
		t.Errorf("MNI = %d, want 1 (vertex 0 maps only to {0})", got)
	}
	// The sample holds 2 of the 3 images of pattern vertex 1.
	uncapped := NewSet(p.Edges(), 0)
	uncapped.Add(Embedding{Map: []graph.V{0, 1}})
	uncapped.Add(Embedding{Map: []graph.V{4, 1}})
	uncapped.Add(Embedding{Map: []graph.V{5, 1}})
	if got := uncapped.MNI(); got != 1 {
		t.Errorf("uncapped MNI = %d, want 1", got)
	}
}

// TestColumnarAccessors pins the Len/At/Embeddings view semantics of
// the columnar store.
func TestColumnarAccessors(t *testing.T) {
	p := testutil.PathGraph(0, 0)
	s := NewSet(p.Edges(), 0)
	s.Add(Embedding{GID: 1, Map: []graph.V{1, 2}})
	s.Add(Embedding{GID: 2, Map: []graph.V{3, 4}})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	e := s.At(1)
	if e.GID != 2 || e.Map[0] != 3 || e.Map[1] != 4 {
		t.Errorf("At(1) = %+v, want GID 2 map [3 4]", e)
	}
	all := s.Embeddings()
	if len(all) != 2 || all[0].GID != 1 || all[0].Map[1] != 2 {
		t.Errorf("Embeddings()[0] = %+v, want GID 1 map [1 2]", all[0])
	}
	// Adds must copy: the caller may reuse its map buffer.
	buf := []graph.V{5, 6}
	s.Add(Embedding{GID: 3, Map: buf})
	buf[0], buf[1] = 9, 9
	if e := s.At(2); e.Map[0] != 5 || e.Map[1] != 6 {
		t.Errorf("Add aliased the caller's buffer: stored %v", e.Map)
	}
}

func TestEmbeddingClone(t *testing.T) {
	e := Embedding{GID: 1, Map: []graph.V{1, 2}}
	c := e.Clone()
	c.Map[0] = 9
	if e.Map[0] != 1 {
		t.Error("Clone should deep-copy the map")
	}
}
