package spidermine

import (
	"math/rand"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

// buildFatAndSkinny injects, into a labeled background ring, (a) two
// copies of a fat pattern (small diameter, many vertices) and (b) two
// copies of a long skinny path. Returns graph plus injected sizes.
func buildFatAndSkinny(rng *rand.Rand) (*graph.Graph, int, int) {
	g := graph.New(200)
	for i := 0; i < 60; i++ {
		g.AddVertex(graph.Label(50 + rng.Intn(20)))
	}
	for i := 0; i < 60; i++ {
		g.MustAddEdge(graph.V(i), graph.V((i+1)%60))
	}
	// Fat: wheel of 9 vertices around a hub (diameter 2), labels 1..9.
	fatSize := 10
	for c := 0; c < 2; c++ {
		hub := g.AddVertex(1)
		var rim []graph.V
		for i := 0; i < 9; i++ {
			v := g.AddVertex(graph.Label(2 + i))
			g.MustAddEdge(hub, v)
			rim = append(rim, v)
		}
		for i := 0; i < 9; i++ {
			g.MustAddEdge(rim[i], rim[(i+1)%9])
		}
	}
	// Skinny: path of 13 vertices (diameter 12), labels 20..32.
	skinnyLen := 13
	for c := 0; c < 2; c++ {
		base := g.N()
		for i := 0; i < skinnyLen; i++ {
			g.AddVertex(graph.Label(20 + i))
		}
		for i := 1; i < skinnyLen; i++ {
			g.MustAddEdge(graph.V(base+i-1), graph.V(base+i))
		}
	}
	return g, fatSize, skinnyLen
}

// TestSpiderMineFindsFatMissesSkinny pins the behavioral contrast the
// paper exploits: with Dmax=4, SpiderMine recovers the fat injected
// pattern but cannot assemble the diameter-12 skinny one.
func TestSpiderMineFindsFatMissesSkinny(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, fatSize, _ := buildFatAndSkinny(rng)
	res, err := Mine(g, Options{K: 5, R: 1, Dmax: 4, Seeds: 120, Support: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns found")
	}
	foundFat := false
	for _, p := range res.Patterns {
		if p.G.N() >= fatSize {
			foundFat = true
		}
		if d := p.G.Diameter(); d > 4 {
			t.Errorf("pattern with diameter %d exceeds Dmax", d)
		}
	}
	if !foundFat {
		t.Error("fat injected pattern not recovered")
	}
	for _, p := range res.Patterns {
		if p.G.Diameter() >= 8 {
			t.Error("skinny pattern should be truncated by the Dmax bound")
		}
	}
}

func TestSpiderMineTopKOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, _, _ := buildFatAndSkinny(rng)
	res, err := Mine(g, Options{K: 3, R: 1, Dmax: 4, Seeds: 60, Support: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) > 3 {
		t.Errorf("K=3 but got %d patterns", len(res.Patterns))
	}
	for i := 1; i < len(res.Patterns); i++ {
		if res.Patterns[i-1].G.N() < res.Patterns[i].G.N() {
			t.Error("patterns should be sorted largest first")
		}
	}
}

func TestSpiderMineDeterministicWithSeed(t *testing.T) {
	build := func() *Result {
		rng := rand.New(rand.NewSource(7))
		g, _, _ := buildFatAndSkinny(rng)
		res, err := Mine(g, Options{K: 4, R: 1, Dmax: 4, Seeds: 40, Support: 2, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := build(), build()
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("non-deterministic: %d vs %d patterns", len(a.Patterns), len(b.Patterns))
	}
	for i := range a.Patterns {
		if !graph.Isomorphic(a.Patterns[i].G, b.Patterns[i].G) {
			t.Error("non-deterministic pattern order")
		}
	}
}

func TestSpiderMineOptionErrors(t *testing.T) {
	g := testutil.PathGraph(0, 1)
	if _, err := Mine(g, Options{K: 1, Seeds: 1}); err == nil {
		t.Error("nil Rng should error")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := Mine(g, Options{K: 0, Seeds: 1, Rng: rng}); err == nil {
		t.Error("K=0 should error")
	}
}

func TestSpiderMineNoFrequentSpiders(t *testing.T) {
	// All labels unique: every 1-ball is unique, support threshold 2
	// leaves nothing.
	g := testutil.PathGraph(1, 2, 3, 4, 5)
	rng := rand.New(rand.NewSource(2))
	res, err := Mine(g, Options{K: 3, R: 1, Dmax: 4, Seeds: 10, Support: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("expected no patterns, got %d", len(res.Patterns))
	}
}

func TestBallVertices(t *testing.T) {
	g := testutil.PathGraph(0, 0, 0, 0, 0)
	b := ballVertices(g, 2, 1)
	if len(b) != 3 {
		t.Errorf("1-ball of center = %v, want 3 vertices", b)
	}
	b2 := ballVertices(g, 0, 2)
	if len(b2) != 3 {
		t.Errorf("2-ball of end = %v, want 3 vertices", b2)
	}
}
