// Package spidermine reimplements SpiderMine (Zhu, Qu, Lo, Yan, Han &
// Yu, PVLDB 2011), the paper's closest competitor: probabilistic mining
// of the top-K largest patterns in a single graph. The mechanism that
// matters for the comparison is kept intact: patterns are assembled from
// "spiders" (r-radius neighborhoods of frequent head vertices), a random
// draw of seed spiders is grown and pairwise-merged, and growth is
// capped by the diameter bound Dmax — which is exactly why long skinny
// patterns (diameter >> Dmax) are missed while large "fat" patterns are
// found.
package spidermine

import (
	"fmt"
	"math/rand"
	"sort"

	"skinnymine/internal/dfscode"
	"skinnymine/internal/graph"
)

// Options configures SpiderMine.
type Options struct {
	// K is the number of largest patterns to return.
	K int
	// R is the spider radius (the paper's experiments use small r).
	R int
	// Dmax bounds the diameter of grown patterns.
	Dmax int
	// Seeds is the number of initial spiders drawn at random (the
	// paper's K' parameter; the SIGMOD'13 comparison uses up to 200).
	Seeds int
	// Support is the frequency threshold σ on spider head classes.
	Support int
	// Rng drives the random draw; required for reproducibility.
	Rng *rand.Rand
}

// Pattern is a mined pattern with the data vertices of one occurrence.
type Pattern struct {
	G        *graph.Graph
	Vertices []graph.V // one occurrence in the data graph
	Support  int       // occurrences of the spider class it grew from
}

// Result holds the top-K largest patterns found.
type Result struct {
	Patterns []*Pattern
}

// Mine runs SpiderMine on a single graph.
func Mine(g *graph.Graph, opt Options) (*Result, error) {
	if opt.Rng == nil {
		return nil, fmt.Errorf("spidermine: Options.Rng is required")
	}
	if opt.K < 1 || opt.Seeds < 1 {
		return nil, fmt.Errorf("spidermine: K and Seeds must be >= 1")
	}
	if opt.R < 1 {
		opt.R = 1
	}
	if opt.Dmax < 1 {
		opt.Dmax = 4
	}
	if opt.Support < 1 {
		opt.Support = 2
	}

	// Phase 1: spiders. The r-neighborhood of every vertex, classified
	// by canonical code; a spider class is frequent when it occurs at
	// sigma or more distinct heads.
	classOf := make([]string, g.N())
	classHeads := make(map[string][]graph.V)
	for v := 0; v < g.N(); v++ {
		ball := ballVertices(g, graph.V(v), opt.R)
		sub, _ := g.InducedSubgraph(ball)
		code := dfscode.MinCodeKey(sub)
		classOf[v] = code
		classHeads[code] = append(classHeads[code], graph.V(v))
	}
	var frequentHeads []graph.V
	for _, heads := range classHeads {
		if len(heads) >= opt.Support {
			frequentHeads = append(frequentHeads, heads...)
		}
	}
	if len(frequentHeads) == 0 {
		return &Result{}, nil
	}
	sort.Slice(frequentHeads, func(i, j int) bool { return frequentHeads[i] < frequentHeads[j] })

	// Phase 2: draw seed spiders and grow each within the diameter
	// bound, only absorbing frequent-spider territory (infrequent
	// surroundings would not survive the support check).
	type region struct {
		head graph.V
		vs   map[graph.V]struct{}
	}
	regions := make([]*region, 0, opt.Seeds)
	for i := 0; i < opt.Seeds; i++ {
		head := frequentHeads[opt.Rng.Intn(len(frequentHeads))]
		r := &region{head: head, vs: make(map[graph.V]struct{})}
		for _, v := range ballVertices(g, head, opt.R) {
			r.vs[v] = struct{}{}
		}
		regions = append(regions, r)
		grow(g, r.vs, classHeads, classOf, opt)
		// Faithful support maintenance: SpiderMine verifies that the
		// grown pattern still has σ embeddings; this embedding
		// enumeration is the dominant cost of the original system.
		if !verifySupport(g, r.vs, opt.Support) {
			// Shrink back to the bare spider, which is frequent by
			// construction of the class count.
			r.vs = make(map[graph.V]struct{})
			for _, v := range ballVertices(g, head, opt.R) {
				r.vs[v] = struct{}{}
			}
		}
	}

	// Phase 3: merge regions whose occupied territory overlaps, then
	// re-grow; merging mimics SpiderMine's pairwise spider merges.
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				if !overlap(regions[i].vs, regions[j].vs) {
					continue
				}
				union := make(map[graph.V]struct{}, len(regions[i].vs)+len(regions[j].vs))
				for v := range regions[i].vs {
					union[v] = struct{}{}
				}
				for v := range regions[j].vs {
					union[v] = struct{}{}
				}
				if diameterOf(g, union) > int32(opt.Dmax) {
					continue // merging would blow the diameter bound
				}
				if !verifySupport(g, union, opt.Support) {
					continue // merged pattern would be infrequent
				}
				regions[i].vs = union
				regions = append(regions[:j], regions[j+1:]...)
				j--
				merged = true
			}
		}
	}

	// Collect distinct patterns, largest first, top K.
	seen := make(map[string]struct{})
	var out []*Pattern
	for _, r := range regions {
		vs := make([]graph.V, 0, len(r.vs))
		for v := range r.vs {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		sub, _ := g.InducedSubgraph(vs)
		if !sub.Connected() || sub.M() == 0 {
			continue
		}
		code := dfscode.MinCodeKey(sub)
		if _, dup := seen[code]; dup {
			continue
		}
		seen[code] = struct{}{}
		out = append(out, &Pattern{G: sub, Vertices: vs, Support: len(classHeads[classOf[r.head]])})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].G.N() > out[j].G.N() })
	if len(out) > opt.K {
		out = out[:opt.K]
	}
	return &Result{Patterns: out}, nil
}

// grow absorbs adjacent vertices while the region's induced diameter
// stays within Dmax and the grown pattern stays frequent. Like the
// original system, frequency of each tentative extension is established
// by embedding enumeration — which is what makes SpiderMine's growth
// expensive on large graphs (proving a pattern infrequent cannot stop
// early).
func grow(g *graph.Graph, vs map[graph.V]struct{}, classHeads map[string][]graph.V, classOf []string, opt Options) {
	for changed := true; changed; {
		changed = false
		var boundary []graph.V
		for v := range vs {
			for _, w := range g.Neighbors(v) {
				if _, in := vs[w]; !in {
					boundary = append(boundary, w)
				}
			}
		}
		sort.Slice(boundary, func(i, j int) bool { return boundary[i] < boundary[j] })
		for _, w := range boundary {
			if _, in := vs[w]; in {
				continue
			}
			vs[w] = struct{}{}
			if diameterOf(g, vs) > int32(opt.Dmax) || !verifySupport(g, vs, opt.Support) {
				delete(vs, w)
				continue
			}
			changed = true
		}
	}
}

func overlap(a, b map[graph.V]struct{}) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for v := range a {
		if _, in := b[v]; in {
			return true
		}
	}
	return false
}

// ballVertices returns the sorted vertices within distance r of v.
func ballVertices(g *graph.Graph, v graph.V, r int) []graph.V {
	dist := map[graph.V]int{v: 0}
	queue := []graph.V{v}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if dist[u] == r {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	return queue
}

// verifySupport counts distinct embedding subgraphs of the pattern
// induced by vs, stopping as soon as sigma are seen.
func verifySupport(g *graph.Graph, vs map[graph.V]struct{}, sigma int) bool {
	list := make([]graph.V, 0, len(vs))
	for v := range vs {
		list = append(list, v)
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	pat, _ := g.InducedSubgraph(list)
	if !pat.Connected() || pat.M() == 0 {
		return false
	}
	edges := pat.Edges()
	seen := make(map[string]struct{}, sigma)
	graph.EnumerateEmbeddings(pat, g, func(mapped []graph.V) bool {
		seen[embKey(edges, mapped)] = struct{}{}
		return len(seen) < sigma
	})
	return len(seen) >= sigma
}

func embKey(patternEdges []graph.Edge, mapped []graph.V) string {
	es := make([]graph.Edge, len(patternEdges))
	for i, pe := range patternEdges {
		es[i] = graph.Edge{U: mapped[pe.U], W: mapped[pe.W]}.Norm()
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].W < es[j].W
	})
	b := make([]byte, 0, len(es)*8)
	for _, e := range es {
		b = append(b, byte(e.U), byte(e.U>>8), byte(e.U>>16), byte(e.U>>24),
			byte(e.W), byte(e.W>>8), byte(e.W>>16), byte(e.W>>24))
	}
	return string(b)
}

// diameterOf computes the diameter of the subgraph induced by vs.
func diameterOf(g *graph.Graph, vs map[graph.V]struct{}) int32 {
	list := make([]graph.V, 0, len(vs))
	for v := range vs {
		list = append(list, v)
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	sub, _ := g.InducedSubgraph(list)
	return sub.Diameter()
}
