// Package miners groups the baseline frequent-subgraph miners from the
// paper's evaluation (Section 6), one subpackage per system:
//
//   - gspan: complete enumerate-and-check mining over minimal DFS codes
//     (Yan & Han, ICDM 2002) — the representative exact baseline.
//   - moss: complete single-graph mining via the gSpan search with
//     embedding-count support (Fiedler & Borgelt, MLG 2007) — the
//     post-filtering ground truth integration tests compare against.
//   - spidermine: probabilistic top-K largest-pattern mining (Zhu, Qu,
//     Lo, Yan, Han & Yu, PVLDB 2011) — the closest competitor, whose
//     diameter cap is exactly why it misses long skinny patterns.
//   - subdue: MDL-guided beam search (Holder, Cook & Djoko, KDD 1994).
//   - seus: summary-graph candidate generation (Ghazizadeh &
//     Chawathe, DS 2002).
//   - origami: output-space sampling of maximal patterns in the
//     transaction setting (Hasan et al., ICDM 2007).
//
// Each reimplementation keeps the mechanism the paper's comparison
// hinges on (search order, support definition, termination) and drops
// engineering detail irrelevant to the figures. The baselines are
// sequential and unshared by design: internal/exp constructs one miner
// per run, so none of them synchronize. This package itself holds no
// code — it exists to document the family and give the subpackages one
// import root.
package miners
