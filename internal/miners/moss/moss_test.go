package moss

import (
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

func TestMossCompleteOnPath(t *testing.T) {
	// Path 0-1-2-3-4 (distinct labels): every connected subgraph is a
	// sub-path; at σ=1 there are 4+3+2+1 = 10 of them.
	g := testutil.PathGraph(0, 1, 2, 3, 4)
	res, err := Mine(g, Options{Support: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 10 {
		t.Errorf("got %d patterns, want 10", len(res.Patterns))
	}
}

func TestMossConstrainedFilterVsVisited(t *testing.T) {
	g := testutil.PathGraph(0, 1, 2, 3, 4)
	keep := func(p *graph.Graph) bool {
		_, ok := p.IsLLongDeltaSkinny(2, 0)
		return ok
	}
	res, err := MineConstrained(g, Options{Support: 1}, keep)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 3 {
		t.Errorf("got %d 2-long patterns, want 3", len(res.Patterns))
	}
	// Enumerate-and-check: the search must have visited the whole
	// frequent space (10 nodes), not just the 3 reported.
	if res.Visited < 10 {
		t.Errorf("visited %d nodes; complete traversal expected", res.Visited)
	}
}

func TestMossMaxEdgesGuard(t *testing.T) {
	// A dense-ish graph would blow up; MaxEdges keeps it bounded.
	g := testutil.CycleGraph(0, 0, 0, 0, 0, 0)
	res, err := Mine(g, Options{Support: 1, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.G.M() > 3 {
			t.Errorf("pattern with %d edges exceeds cap", p.G.M())
		}
	}
}

func TestMossFindsCyclicSkinnyPatternsCoreMisses(t *testing.T) {
	// The C4 gap case from the core package: MoSS + filter finds it.
	g := testutil.CycleGraph(2, 1, 2, 1)
	keep := func(p *graph.Graph) bool {
		_, ok := p.IsLLongDeltaSkinny(2, 1)
		return ok
	}
	res, err := MineConstrained(g, Options{Support: 1}, keep)
	if err != nil {
		t.Fatal(err)
	}
	foundC4 := false
	for _, p := range res.Patterns {
		if p.G.M() == 4 && p.G.N() == 4 {
			foundC4 = true
		}
	}
	if !foundC4 {
		t.Error("enumerate-and-check should find the cyclic 2-long 1-skinny pattern")
	}
}
