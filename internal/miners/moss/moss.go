// Package moss provides the MoSS baseline (Fiedler & Borgelt, MLG 2007):
// complete frequent subgraph mining in a single graph. Like the original
// it enumerates the full frequent pattern space — which is why the paper
// shows it failing to finish on denser settings — here via the gSpan
// canonical-code search parameterized with embedding-count support.
//
// MineConstrained post-filters the complete output by a constraint; this
// is the enumerate-and-check reference SkinnyMine is compared against
// (and the ground truth used by integration tests).
package moss

import (
	"skinnymine/internal/graph"
	"skinnymine/internal/miners/gspan"
	"skinnymine/internal/support"
)

// Options configures MoSS.
type Options struct {
	// Support is the minimum number of embeddings (distinct subgraphs).
	Support int
	// MaxEdges bounds the search depth (0 = unlimited; beware blow-up,
	// which is the documented failure mode on GID 2/4/5).
	MaxEdges int
	// MaxPatterns stops after this many patterns (0 = unlimited).
	MaxPatterns int
}

// Result re-exports the engine's result type.
type Result = gspan.Result

// Mine runs the complete single-graph miner.
func Mine(g *graph.Graph, opt Options) (*Result, error) {
	return gspan.Mine([]*graph.Graph{g}, gspan.Options{
		Support:     opt.Support,
		Measure:     support.EmbeddingCount,
		MaxEdges:    opt.MaxEdges,
		MaxPatterns: opt.MaxPatterns,
	})
}

// MineConstrained runs the complete miner and keeps only patterns
// satisfying the predicate — traversing the whole frequent pattern
// space regardless (no constraint push-down).
func MineConstrained(g *graph.Graph, opt Options, keep func(*graph.Graph) bool) (*Result, error) {
	return gspan.Mine([]*graph.Graph{g}, gspan.Options{
		Support:     opt.Support,
		Measure:     support.EmbeddingCount,
		MaxEdges:    opt.MaxEdges,
		MaxPatterns: opt.MaxPatterns,
		Filter:      keep,
	})
}
