// Package subdue reimplements the SUBDUE substructure discovery system
// (Holder, Cook & Djoko, KDD 1994): beam search over substructures
// scored by an MDL-style compression value. The mechanism driving the
// paper's comparison is preserved: SUBDUE prefers small, highly frequent
// substructures because compression value scales with
// instances x size, and it shifts toward even smaller patterns as small
// patterns' supports rise (Figures 6-8).
package subdue

import (
	"fmt"
	"math"
	"sort"

	"skinnymine/internal/dfscode"
	"skinnymine/internal/graph"
	"skinnymine/internal/support"
)

// Options configures SUBDUE.
type Options struct {
	// Beam is the beam width (SUBDUE's default is 4).
	Beam int
	// Limit bounds the number of substructures expanded (search budget).
	Limit int
	// MaxSize bounds substructure size in edges.
	MaxSize int
	// Best is how many best substructures to report.
	Best int
}

// Pattern is a discovered substructure with its compression value.
type Pattern struct {
	G         *graph.Graph
	Instances int
	Value     float64
}

// Result holds the best substructures found.
type Result struct {
	Patterns []*Pattern
}

type candidate struct {
	g     *graph.Graph
	embs  *support.Set
	value float64
}

// Mine runs SUBDUE on a single graph.
func Mine(g *graph.Graph, opt Options) (*Result, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("subdue: empty graph")
	}
	if opt.Beam < 1 {
		opt.Beam = 4
	}
	if opt.Limit < 1 {
		opt.Limit = 100
	}
	if opt.MaxSize < 1 {
		opt.MaxSize = 20
	}
	if opt.Best < 1 {
		opt.Best = 10
	}

	baseDL := graphDL(g.N(), g.M(), labelCount(g))

	// Seed candidates: one per frequent edge pattern.
	var beam []*candidate
	seen := make(map[string]struct{})
	for _, e := range g.Edges() {
		p := graph.New(2)
		p.AddVertex(g.Label(e.U))
		p.AddVertex(g.Label(e.W))
		p.MustAddEdge(0, 1)
		code := dfscode.MinCodeKey(p)
		if _, dup := seen[code]; dup {
			continue
		}
		seen[code] = struct{}{}
		set := support.CountEmbeddings(p, []*graph.Graph{g}, 0)
		c := &candidate{g: p, embs: set}
		c.value = compressionValue(g, baseDL, p, set)
		beam = append(beam, c)
	}
	sortBeam(beam)
	if len(beam) > opt.Beam {
		beam = beam[:opt.Beam]
	}

	var best []*candidate
	best = append(best, beam...)
	expanded := 0
	for len(beam) > 0 && expanded < opt.Limit {
		var next []*candidate
		for _, c := range beam {
			if expanded >= opt.Limit {
				break
			}
			expanded++
			if c.g.M() >= opt.MaxSize {
				continue
			}
			for _, child := range expand(g, c, seen) {
				child.value = compressionValue(g, baseDL, child.g, child.embs)
				next = append(next, child)
				best = append(best, child)
			}
		}
		sortBeam(next)
		if len(next) > opt.Beam {
			next = next[:opt.Beam]
		}
		beam = next
	}

	sortBeam(best)
	if len(best) > opt.Best {
		best = best[:opt.Best]
	}
	out := &Result{}
	for _, c := range best {
		out.Patterns = append(out.Patterns, &Pattern{
			G:         c.g,
			Instances: nonOverlappingInstances(c.embs),
			Value:     c.value,
		})
	}
	return out, nil
}

// expand generates one-edge extensions of a candidate from its
// embeddings (forward and backward), deduplicated by canonical code.
func expand(g *graph.Graph, c *candidate, seen map[string]struct{}) []*candidate {
	type ext struct {
		src, dst int32 // dst == -1 for forward
		label    graph.Label
	}
	exts := make(map[ext]struct{})
	for ei := 0; ei < c.embs.Len(); ei++ {
		e := c.embs.At(ei)
		inv := make(map[graph.V]int32, len(e.Map))
		for pi, dv := range e.Map {
			inv[dv] = int32(pi)
		}
		for pi, dv := range e.Map {
			for _, w := range g.Neighbors(dv) {
				if qj, in := inv[w]; in {
					if !c.g.HasEdge(graph.V(pi), graph.V(qj)) {
						a, b := int32(pi), qj
						if a > b {
							a, b = b, a
						}
						exts[ext{src: a, dst: b}] = struct{}{}
					}
				} else {
					exts[ext{src: int32(pi), dst: -1, label: g.Label(w)}] = struct{}{}
				}
			}
		}
	}
	var out []*candidate
	for x := range exts {
		p := c.g.Clone()
		if x.dst < 0 {
			u := p.AddVertex(x.label)
			p.MustAddEdge(graph.V(x.src), u)
		} else {
			p.MustAddEdge(graph.V(x.src), graph.V(x.dst))
		}
		code := dfscode.MinCodeKey(p)
		if _, dup := seen[code]; dup {
			continue
		}
		seen[code] = struct{}{}
		set := support.CountEmbeddings(p, []*graph.Graph{g}, 0)
		if set.Support() < 2 {
			continue
		}
		out = append(out, &candidate{g: p, embs: set})
	}
	return out
}

// compressionValue is SUBDUE's MDL score: DL(G) / (DL(S) + DL(G|S)),
// where G|S replaces non-overlapping instances of S by single vertices.
func compressionValue(g *graph.Graph, baseDL float64, p *graph.Graph, set *support.Set) float64 {
	inst := nonOverlappingInstances(set)
	labels := labelCount(g)
	// After compression each instance collapses to one vertex.
	nAfter := g.N() - inst*(p.N()-1)
	mAfter := g.M() - inst*p.M() // boundary edges kept, approximation
	if nAfter < 1 {
		nAfter = 1
	}
	if mAfter < 0 {
		mAfter = 0
	}
	dl := graphDL(p.N(), p.M(), labels) + graphDL(nAfter, mAfter, labels+1)
	if dl <= 0 {
		return 0
	}
	return baseDL / dl
}

// nonOverlappingInstances greedily counts vertex-disjoint embeddings.
func nonOverlappingInstances(set *support.Set) int {
	used := make(map[string]map[graph.V]struct{})
	count := 0
	for ei := 0; ei < set.Len(); ei++ {
		e := set.At(ei)
		key := fmt.Sprint(e.GID)
		if used[key] == nil {
			used[key] = make(map[graph.V]struct{})
		}
		clash := false
		for _, v := range e.Map {
			if _, in := used[key][v]; in {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		for _, v := range e.Map {
			used[key][v] = struct{}{}
		}
		count++
	}
	return count
}

// graphDL approximates the description length of a graph in bits.
func graphDL(n, m, labels int) float64 {
	if n < 1 {
		n = 1
	}
	lg := func(x int) float64 {
		if x < 2 {
			return 1
		}
		return math.Log2(float64(x))
	}
	return float64(n)*lg(labels) + float64(m)*(2*lg(n)+1)
}

func labelCount(g *graph.Graph) int {
	set := make(map[graph.Label]struct{})
	for _, l := range g.Labels() {
		set[l] = struct{}{}
	}
	if len(set) == 0 {
		return 1
	}
	return len(set)
}

func sortBeam(cs []*candidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].value != cs[j].value {
			return cs[i].value > cs[j].value
		}
		return cs[i].g.M() > cs[j].g.M()
	})
}
