package subdue

import (
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

// repeatedMotifGraph builds a graph with many copies of a small motif
// (a-b-c triangle) and one big rare structure.
func repeatedMotifGraph() *graph.Graph {
	g := graph.New(100)
	for c := 0; c < 8; c++ {
		a := g.AddVertex(1)
		b := g.AddVertex(2)
		cc := g.AddVertex(3)
		g.MustAddEdge(a, b)
		g.MustAddEdge(b, cc)
		g.MustAddEdge(a, cc)
	}
	// One long rare path.
	base := g.N()
	for i := 0; i < 10; i++ {
		g.AddVertex(graph.Label(10 + i))
	}
	for i := 1; i < 10; i++ {
		g.MustAddEdge(graph.V(base+i-1), graph.V(base+i))
	}
	// Connect components loosely.
	for c := 1; c < 8; c++ {
		g.MustAddEdge(graph.V((c-1)*3), graph.V(c*3))
	}
	g.MustAddEdge(0, graph.V(base))
	return g
}

// TestSubdueFavorsSmallFrequentMotifs pins the behavior the paper
// reports: MDL compression rewards many instances x moderate size, so
// the best substructure is the repeated triangle, not the long rare
// path.
func TestSubdueFavorsSmallFrequentMotifs(t *testing.T) {
	g := repeatedMotifGraph()
	res, err := Mine(g, Options{Beam: 4, Limit: 60, MaxSize: 12, Best: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no substructures found")
	}
	best := res.Patterns[0]
	if best.Instances < 4 {
		t.Errorf("best substructure has %d instances; expected a frequent motif", best.Instances)
	}
	if best.G.N() > 8 {
		t.Errorf("best substructure has %d vertices; SUBDUE should prefer small motifs", best.G.N())
	}
	for _, p := range res.Patterns {
		if p.G.N() >= 10 {
			t.Error("the rare 10-vertex path should not outrank frequent motifs")
		}
	}
}

// TestSubdueShiftsSmallerWithMoreSupport mirrors Figures 6-8: raising
// the support of small patterns shifts SUBDUE's output toward them.
func TestSubdueShiftsSmallerWithMoreSupport(t *testing.T) {
	// Few motifs: best pattern can afford to be bigger.
	sparse := graph.New(20)
	for c := 0; c < 2; c++ {
		a := sparse.AddVertex(1)
		b := sparse.AddVertex(2)
		cc := sparse.AddVertex(3)
		d := sparse.AddVertex(4)
		sparse.MustAddEdge(a, b)
		sparse.MustAddEdge(b, cc)
		sparse.MustAddEdge(cc, d)
	}
	sparse.MustAddEdge(0, 4)
	// Many copies of just the a-b edge.
	dense := graph.New(60)
	for c := 0; c < 2; c++ {
		a := dense.AddVertex(1)
		b := dense.AddVertex(2)
		cc := dense.AddVertex(3)
		d := dense.AddVertex(4)
		dense.MustAddEdge(a, b)
		dense.MustAddEdge(b, cc)
		dense.MustAddEdge(cc, d)
	}
	dense.MustAddEdge(0, 4)
	for c := 0; c < 20; c++ {
		a := dense.AddVertex(1)
		b := dense.AddVertex(2)
		dense.MustAddEdge(a, b)
	}

	rs, err := Mine(sparse, Options{Beam: 4, Limit: 40, Best: 1})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Mine(dense, Options{Beam: 4, Limit: 40, Best: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Patterns) == 0 || len(rd.Patterns) == 0 {
		t.Fatal("missing results")
	}
	if rd.Patterns[0].G.M() > rs.Patterns[0].G.M() {
		t.Errorf("with many small-pattern instances the best should not grow: dense=%d sparse=%d edges",
			rd.Patterns[0].G.M(), rs.Patterns[0].G.M())
	}
	if rd.Patterns[0].Instances <= rs.Patterns[0].Instances {
		t.Errorf("dense graph's best should have more instances (%d vs %d)",
			rd.Patterns[0].Instances, rs.Patterns[0].Instances)
	}
}

func TestSubdueEmptyGraph(t *testing.T) {
	if _, err := Mine(graph.New(0), Options{}); err == nil {
		t.Error("empty graph should error")
	}
}

func TestSubdueDefaults(t *testing.T) {
	g := testutil.PathGraph(0, 1, 0, 1, 0)
	res, err := Mine(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Error("defaults should find the a-b edge motif")
	}
	for _, p := range res.Patterns {
		if p.Value <= 0 {
			t.Error("compression value should be positive")
		}
	}
}

func TestGraphDLMonotone(t *testing.T) {
	if graphDL(10, 20, 4) <= graphDL(5, 10, 4) {
		t.Error("bigger graphs should cost more bits")
	}
	if graphDL(0, 0, 0) <= 0 {
		t.Error("degenerate inputs should still be positive")
	}
}
