package seus

import (
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

func TestSEuSFindsFrequentEdgePatterns(t *testing.T) {
	// Many a-b edges.
	g := graph.New(20)
	for c := 0; c < 6; c++ {
		a := g.AddVertex(1)
		b := g.AddVertex(2)
		g.MustAddEdge(a, b)
	}
	for c := 1; c < 6; c++ {
		g.MustAddEdge(graph.V((c-1)*2), graph.V(c*2))
	}
	res, err := Mine(g, Options{Support: 3, MaxSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Patterns {
		if p.G.M() == 1 && p.Support >= 6 {
			found = true
		}
		// For single-edge patterns the summary weight is exact.
		if p.G.M() == 1 && p.Support != p.Estimate {
			t.Errorf("single-edge support %d != summary weight %d", p.Support, p.Estimate)
		}
	}
	if !found {
		t.Error("the a-b edge pattern should be found with support >= 6")
	}
}

// TestSEuSProducesSmallPatterns pins the node-collapsing limitation: on
// a graph with a long injected path of distinct labels (each pair
// infrequent), SEuS keeps only small structures.
func TestSEuSProducesSmallPatterns(t *testing.T) {
	g := graph.New(40)
	// Background of frequent but pairwise-disjoint a-b edges: no real
	// pattern larger than one edge exists among them.
	for c := 0; c < 5; c++ {
		a := g.AddVertex(1)
		b := g.AddVertex(2)
		g.MustAddEdge(a, b)
	}
	// Long unique-label path: each edge class has summary weight 1, so
	// the whole path is pruned by the σ=2 estimate.
	base := g.N()
	for i := 0; i < 12; i++ {
		g.AddVertex(graph.Label(10 + i))
	}
	for i := 1; i < 12; i++ {
		g.MustAddEdge(graph.V(base+i-1), graph.V(base+i))
	}
	res, err := Mine(g, Options{Support: 2, MaxSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.G.N() > 2 {
			t.Errorf("pattern with %d vertices; only the disjoint a-b edge is truly frequent", p.G.N())
		}
	}
}

func TestSEuSEstimatePopulated(t *testing.T) {
	g := testutil.CycleGraph(0, 1, 0, 1)
	res, err := Mine(g, Options{Support: 1, MaxSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("expected patterns")
	}
	for _, p := range res.Patterns {
		if p.Estimate <= 0 {
			t.Errorf("estimate %d should be positive", p.Estimate)
		}
		// Single-edge patterns: summary weight is the exact support.
		if p.G.M() == 1 && p.Support != p.Estimate {
			t.Errorf("single-edge support %d != estimate %d", p.Support, p.Estimate)
		}
	}
	if res.Candidates == 0 {
		t.Error("candidate counter should be populated")
	}
}

func TestSEuSEmptyGraph(t *testing.T) {
	if _, err := Mine(graph.New(0), Options{}); err == nil {
		t.Error("empty graph should error")
	}
}

func TestBuildSummary(t *testing.T) {
	g := testutil.PathGraph(1, 2, 1, 2)
	s := buildSummary(g)
	if len(s.labels) != 2 {
		t.Errorf("summary nodes = %d, want 2", len(s.labels))
	}
	// Three edges, all between classes 1 and 2.
	total := 0
	for _, w := range s.weight {
		total += w
	}
	if total != 3 {
		t.Errorf("summary edge weight = %d, want 3", total)
	}
}
