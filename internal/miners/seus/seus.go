// Package seus reimplements SEuS (Ghazizadeh & Chawathe, DS 2002):
// frequent structure extraction using a summary graph. Vertices are
// collapsed by label into summary nodes; candidate substructures are
// expanded on the summary with support estimated from summary edge
// counts, then verified on the data graph. The node-collapsing heuristic
// is what limits SEuS to small patterns when many low-frequency patterns
// exist (the behavior in the paper's Figures 4-8).
package seus

import (
	"fmt"
	"sort"

	"skinnymine/internal/dfscode"
	"skinnymine/internal/graph"
	"skinnymine/internal/support"
)

// Options configures SEuS.
type Options struct {
	// Support is the frequency threshold on verified embeddings.
	Support int
	// MaxSize bounds candidate size in edges (SEuS explores small
	// structures; its published experiments rarely pass 5 edges).
	MaxSize int
	// MaxCandidates bounds summary-lattice expansion.
	MaxCandidates int
}

// Pattern is a verified frequent structure. Estimate is the summary-
// based support estimate (the minimum label-pair class weight along the
// structure); it is exact for single-edge patterns and a pruning
// heuristic for larger ones.
type Pattern struct {
	G        *graph.Graph
	Estimate int
	Support  int // verified embedding count
}

// Result holds verified patterns.
type Result struct {
	Patterns []*Pattern
	// Candidates is how many summary candidates were generated.
	Candidates int
}

// summary is the label-collapsed graph: one node per label, edge weights
// count data edges between the label classes.
type summary struct {
	labels []graph.Label
	index  map[graph.Label]int
	weight map[[2]int]int // canonical (i<=j) label-pair -> count
}

func buildSummary(g *graph.Graph) *summary {
	s := &summary{index: make(map[graph.Label]int), weight: make(map[[2]int]int)}
	for _, l := range g.Labels() {
		if _, ok := s.index[l]; !ok {
			s.index[l] = len(s.labels)
			s.labels = append(s.labels, l)
		}
	}
	for _, e := range g.Edges() {
		i, j := s.index[g.Label(e.U)], s.index[g.Label(e.W)]
		if i > j {
			i, j = j, i
		}
		s.weight[[2]int{i, j}]++
	}
	return s
}

// Mine runs SEuS on a single graph.
func Mine(g *graph.Graph, opt Options) (*Result, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("seus: empty graph")
	}
	if opt.Support < 1 {
		opt.Support = 2
	}
	if opt.MaxSize < 1 {
		opt.MaxSize = 4
	}
	if opt.MaxCandidates < 1 {
		opt.MaxCandidates = 2000
	}
	sum := buildSummary(g)

	// Expand candidate structures over the summary: start from label
	// pairs with weight >= sigma, extend by frequent summary edges.
	type cand struct {
		g   *graph.Graph
		est int
	}
	var frontier []cand
	seen := make(map[string]struct{})
	push := func(p *graph.Graph, est int, to *[]cand) bool {
		code := dfscode.MinCodeKey(p)
		if _, dup := seen[code]; dup {
			return false
		}
		seen[code] = struct{}{}
		*to = append(*to, cand{g: p, est: est})
		return true
	}
	for pair, w := range sum.weight {
		if w < opt.Support {
			continue
		}
		p := graph.New(2)
		p.AddVertex(sum.labels[pair[0]])
		p.AddVertex(sum.labels[pair[1]])
		p.MustAddEdge(0, 1)
		push(p, w, &frontier)
	}

	res := &Result{}
	var all []cand
	all = append(all, frontier...)
	for len(frontier) > 0 && len(all) < opt.MaxCandidates {
		var next []cand
		for _, c := range frontier {
			if c.g.M() >= opt.MaxSize || len(all) >= opt.MaxCandidates {
				break
			}
			// Extend every vertex by every frequent summary edge
			// touching its label class.
			for v := 0; v < c.g.N(); v++ {
				li := sum.index[c.g.Label(graph.V(v))]
				for pair, w := range sum.weight {
					if w < opt.Support {
						continue
					}
					var other int
					switch li {
					case pair[0]:
						other = pair[1]
					case pair[1]:
						other = pair[0]
					default:
						continue
					}
					p := c.g.Clone()
					u := p.AddVertex(sum.labels[other])
					p.MustAddEdge(graph.V(v), u)
					est := c.est
					if w < est {
						est = w
					}
					if push(p, est, &next) {
						all = append(all, cand{g: p, est: est})
					}
				}
			}
		}
		frontier = next
	}
	res.Candidates = len(all)

	// Verification phase: count true embeddings for candidates whose
	// estimate passes the threshold.
	for _, c := range all {
		if c.est < opt.Support {
			continue
		}
		set := support.CountEmbeddings(c.g, []*graph.Graph{g}, 4096)
		if sup := set.Support(); sup >= opt.Support {
			res.Patterns = append(res.Patterns, &Pattern{G: c.g, Estimate: c.est, Support: sup})
		}
	}
	sort.Slice(res.Patterns, func(i, j int) bool {
		if res.Patterns[i].Support != res.Patterns[j].Support {
			return res.Patterns[i].Support > res.Patterns[j].Support
		}
		return res.Patterns[i].G.M() > res.Patterns[j].G.M()
	})
	return res, nil
}
