package gspan

import (
	"math/rand"
	"testing"

	"skinnymine/internal/dfscode"
	"skinnymine/internal/graph"
	"skinnymine/internal/support"
	"skinnymine/internal/testutil"
)

// bruteTransactionSupport enumerates all connected subgraph patterns of
// the database graphs (by edge subsets), counts graph support, and keeps
// the frequent ones. Ground truth for small inputs.
func bruteTransactionSupport(graphs []*graph.Graph, sigma, maxEdges int) map[string]int {
	gidsByCode := make(map[string]map[int32]struct{})
	for gi, g := range graphs {
		es := g.Edges()
		n := len(es)
		for mask := 1; mask < 1<<n; mask++ {
			if maxEdges > 0 && popcount(mask) > maxEdges {
				continue
			}
			sub := subgraphOf(g, es, mask)
			if sub == nil || !sub.Connected() {
				continue
			}
			code := dfscode.MinCodeKey(sub)
			if gidsByCode[code] == nil {
				gidsByCode[code] = make(map[int32]struct{})
			}
			gidsByCode[code][int32(gi)] = struct{}{}
		}
	}
	out := make(map[string]int)
	for code, gids := range gidsByCode {
		if len(gids) >= sigma {
			out[code] = len(gids)
		}
	}
	return out
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func subgraphOf(g *graph.Graph, es []graph.Edge, mask int) *graph.Graph {
	var vs []graph.V
	seen := make(map[graph.V]struct{})
	var chosen []graph.Edge
	for i := range es {
		if mask&(1<<i) == 0 {
			continue
		}
		chosen = append(chosen, es[i])
		for _, v := range []graph.V{es[i].U, es[i].W} {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				vs = append(vs, v)
			}
		}
	}
	idx := make(map[graph.V]graph.V)
	sub := graph.New(len(vs))
	for i, v := range vs {
		idx[v] = graph.V(i)
		sub.AddVertex(g.Label(v))
	}
	for _, e := range chosen {
		sub.MustAddEdge(idx[e.U], idx[e.W])
	}
	return sub
}

func TestGSpanMatchesBruteForceTransaction(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		var db []*graph.Graph
		for i := 0; i < 4; i++ {
			db = append(db, testutil.RandomConnectedGraph(rng, 4+rng.Intn(3), rng.Intn(2), 2))
		}
		for _, sigma := range []int{1, 2, 3} {
			res, err := Mine(db, Options{Support: sigma, Measure: support.GraphCount, MinEdges: 1})
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]int)
			for _, p := range res.Patterns {
				if _, dup := got[p.Code.Key()]; dup {
					t.Fatalf("trial %d: duplicate code in output", trial)
				}
				got[dfscode.MinCodeKey(p.G)] = p.Support
			}
			want := bruteTransactionSupport(db, sigma, 0)
			if len(got) != len(want) {
				t.Fatalf("trial %d σ=%d: %d patterns, want %d", trial, sigma, len(got), len(want))
			}
			for code, sup := range want {
				if got[code] != sup {
					t.Fatalf("trial %d σ=%d: support %d, want %d", trial, sigma, got[code], sup)
				}
			}
		}
	}
}

func TestGSpanSingleGraphEmbeddingCount(t *testing.T) {
	// Path a-a-a-a: pattern a-a has 3 embeddings, a-a-a has 2, a-a-a-a 1.
	g := testutil.PathGraph(0, 0, 0, 0)
	res, err := MineSingle(g, Options{Support: 2, MinEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	bySize := map[int]int{}
	for _, p := range res.Patterns {
		bySize[p.G.M()] = p.Support
	}
	if bySize[1] != 3 || bySize[2] != 2 {
		t.Errorf("supports by size = %v, want 1:3 2:2", bySize)
	}
	if _, ok := bySize[3]; ok {
		t.Error("length-3 path has support 1 < 2")
	}
}

func TestGSpanMaxEdgesAndMinEdges(t *testing.T) {
	g := testutil.PathGraph(0, 0, 0, 0, 0)
	res, err := MineSingle(g, Options{Support: 1, MinEdges: 2, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.G.M() < 2 || p.G.M() > 3 {
			t.Errorf("pattern size %d outside [2,3]", p.G.M())
		}
	}
}

func TestGSpanMaxPatterns(t *testing.T) {
	g := testutil.PathGraph(0, 1, 2, 3, 4)
	res, err := MineSingle(g, Options{Support: 1, MinEdges: 1, MaxPatterns: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 3 {
		t.Errorf("got %d patterns, want 3", len(res.Patterns))
	}
}

func TestGSpanFilter(t *testing.T) {
	g := testutil.PathGraph(0, 1, 2, 3)
	res, err := Mine([]*graph.Graph{g}, Options{
		Support: 1, Measure: support.EmbeddingCount, MinEdges: 1,
		Filter: func(p *graph.Graph) bool { return p.M() == 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 2 {
		t.Fatalf("got %d patterns, want 2 (length-2 paths)", len(res.Patterns))
	}
	if res.Visited <= len(res.Patterns) {
		t.Error("enumerate-and-check should visit more nodes than it reports")
	}
}

func TestGSpanErrors(t *testing.T) {
	if _, err := Mine(nil, Options{Support: 1}); err == nil {
		t.Error("empty DB should error")
	}
	g := testutil.PathGraph(0, 1)
	if _, err := Mine([]*graph.Graph{g}, Options{Support: 0}); err == nil {
		t.Error("support 0 should error")
	}
}
