// Package gspan implements the gSpan algorithm (Yan & Han, ICDM 2002):
// complete frequent subgraph mining by depth-first search over minimal
// DFS codes with rightmost-path extension. It is the paper's
// representative "enumerate-and-check" baseline and, parameterized with
// embedding-count support on one graph, the engine behind the MoSS
// baseline (Fiedler & Borgelt 2007).
package gspan

import (
	"fmt"

	"skinnymine/internal/dfscode"
	"skinnymine/internal/graph"
	"skinnymine/internal/support"
)

// Options configures a mining run.
type Options struct {
	// Support is the frequency threshold (>= 1).
	Support int
	// Measure selects support counting: GraphCount for the classic
	// transaction setting, EmbeddingCount for single-graph mining.
	Measure support.Measure
	// MinEdges/MaxEdges bound reported pattern sizes; MaxEdges also
	// bounds the search (0 means unlimited).
	MinEdges, MaxEdges int
	// MaxPatterns stops the search after this many reported patterns
	// (0 = unlimited).
	MaxPatterns int
	// Filter, when set, keeps only patterns it accepts. The search still
	// traverses non-matching frequent patterns (the constraint is not
	// pushed down — that is the point of the enumerate-and-check
	// baseline the paper argues against).
	Filter func(*graph.Graph) bool
}

// Pattern is one mined frequent pattern.
type Pattern struct {
	Code    dfscode.Code
	G       *graph.Graph
	Support int
}

// Result is a mining run's output.
type Result struct {
	Patterns []*Pattern
	// Visited counts search-tree nodes expanded (frequent minimal codes),
	// a proxy for enumerate-and-check work.
	Visited int
}

type emb struct {
	gid  int32
	vmap []graph.V
}

type searcher struct {
	graphs []*graph.Graph
	opt    Options
	out    []*Pattern
	visit  int
	done   bool
}

// Mine runs gSpan over a graph database.
func Mine(graphs []*graph.Graph, opt Options) (*Result, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("gspan: no input graphs")
	}
	if opt.Support < 1 {
		return nil, fmt.Errorf("gspan: support must be >= 1, got %d", opt.Support)
	}
	s := &searcher{graphs: graphs, opt: opt}
	s.run()
	return &Result{Patterns: s.out, Visited: s.visit}, nil
}

// MineSingle runs the MoSS-style single-graph complete miner: gSpan
// search with embedding-count support.
func MineSingle(g *graph.Graph, opt Options) (*Result, error) {
	opt.Measure = support.EmbeddingCount
	return Mine([]*graph.Graph{g}, opt)
}

func (s *searcher) run() {
	// Seed: all frequent single-edge codes, in DFS-lexicographic order.
	type seed struct {
		t    dfscode.Tuple
		embs []emb
	}
	seedsByKey := make(map[dfscode.Tuple]*seed)
	for gi, g := range s.graphs {
		for _, e := range g.Edges() {
			for _, or := range [2][2]graph.V{{e.U, e.W}, {e.W, e.U}} {
				lu, lw := g.Label(or[0]), g.Label(or[1])
				if lu > lw {
					continue // canonical single-edge codes have LI <= LJ
				}
				t := dfscode.Tuple{I: 0, J: 1, LI: lu, LJ: lw}
				sd, ok := seedsByKey[t]
				if !ok {
					sd = &seed{t: t}
					seedsByKey[t] = sd
				}
				sd.embs = append(sd.embs, emb{gid: int32(gi), vmap: []graph.V{or[0], or[1]}})
			}
		}
	}
	var seeds []*seed
	for _, sd := range seedsByKey {
		seeds = append(seeds, sd)
	}
	for i := 1; i < len(seeds); i++ {
		for j := i; j > 0 && dfscode.CompareTuples(seeds[j].t, seeds[j-1].t) < 0; j-- {
			seeds[j], seeds[j-1] = seeds[j-1], seeds[j]
		}
	}
	for _, sd := range seeds {
		if s.done {
			return
		}
		code := dfscode.Code{sd.t}
		s.expand(code, sd.embs)
	}
}

func (s *searcher) expand(code dfscode.Code, embs []emb) {
	if s.done {
		return
	}
	sup := s.supportOf(code, embs)
	if sup < s.opt.Support {
		return
	}
	if !dfscode.IsMin(code) {
		return
	}
	s.visit++
	if len(code) >= s.opt.MinEdges {
		g := code.Graph()
		if s.opt.Filter == nil || s.opt.Filter(g) {
			s.out = append(s.out, &Pattern{Code: code, G: g, Support: sup})
			if s.opt.MaxPatterns > 0 && len(s.out) >= s.opt.MaxPatterns {
				s.done = true
				return
			}
		}
	}
	if s.opt.MaxEdges > 0 && len(code) >= s.opt.MaxEdges {
		return
	}
	// Rightmost-path extensions grouped by tuple.
	rmp := code.RightmostPath()
	n := int32(code.VertexCount())
	byTuple := make(map[dfscode.Tuple][]emb)
	for _, e := range embs {
		s.extensions(code, rmp, n, e, byTuple)
	}
	var tuples []dfscode.Tuple
	for t := range byTuple {
		tuples = append(tuples, t)
	}
	sortTuples(tuples)
	for _, t := range tuples {
		if s.done {
			return
		}
		child := make(dfscode.Code, len(code), len(code)+1)
		copy(child, code)
		child = append(child, t)
		s.expand(child, byTuple[t])
	}
}

// extensions enumerates rightmost-path extensions of one embedding.
func (s *searcher) extensions(code dfscode.Code, rmp []int32, n int32, e emb, out map[dfscode.Tuple][]emb) {
	g := s.graphs[e.gid]
	inv := make(map[graph.V]int32, len(e.vmap))
	for ci, dv := range e.vmap {
		inv[dv] = int32(ci)
	}
	covered := func(a, b graph.V) bool {
		ca, cb := inv[a], inv[b]
		for _, t := range code {
			x, y := e.vmap[t.I], e.vmap[t.J]
			if (x == a && y == b) || (x == b && y == a) {
				_ = ca
				_ = cb
				return true
			}
		}
		return false
	}
	r := rmp[len(rmp)-1]
	rv := e.vmap[r]
	// Backward: rightmost vertex to an earlier rightmost-path vertex.
	for _, w := range g.Neighbors(rv) {
		ci, mapped := inv[w]
		if !mapped || ci >= r || !onPath(rmp, ci) {
			continue
		}
		if covered(rv, w) {
			continue
		}
		t := dfscode.Tuple{I: r, J: ci, LI: g.Label(rv), LJ: g.Label(w)}
		out[t] = append(out[t], e)
	}
	// Forward: rightmost-path vertex to a new vertex.
	for _, ci := range rmp {
		cv := e.vmap[ci]
		for _, w := range g.Neighbors(cv) {
			if _, mapped := inv[w]; mapped {
				continue
			}
			t := dfscode.Tuple{I: ci, J: n, LI: g.Label(cv), LJ: g.Label(w)}
			child := emb{gid: e.gid, vmap: append(append([]graph.V(nil), e.vmap...), w)}
			out[t] = append(out[t], child)
		}
	}
}

func onPath(rmp []int32, ci int32) bool {
	for _, x := range rmp {
		if x == ci {
			return true
		}
	}
	return false
}

// supportOf counts support of a code given its embeddings. Backward
// extensions reuse the parent vmap, so embeddings may repeat; both
// measures dedupe appropriately.
func (s *searcher) supportOf(code dfscode.Code, embs []emb) int {
	switch s.opt.Measure {
	case support.GraphCount:
		gids := make(map[int32]struct{})
		for _, e := range embs {
			gids[e.gid] = struct{}{}
		}
		return len(gids)
	default:
		pg := code.Graph()
		set := support.NewSet(pg.Edges(), 1) // store 1, count all
		for _, e := range embs {
			set.Add(support.Embedding{GID: e.gid, Map: e.vmap})
		}
		if s.opt.Measure == support.MNICount {
			// MNI needs stored maps; recount without cap.
			full := support.NewSet(pg.Edges(), 0)
			for _, e := range embs {
				full.Add(support.Embedding{GID: e.gid, Map: e.vmap})
			}
			return full.MNI()
		}
		return set.Support()
	}
}

func sortTuples(ts []dfscode.Tuple) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && dfscode.CompareTuples(ts[j], ts[j-1]) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
