package origami

import (
	"math/rand"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

func smallDB() []*graph.Graph {
	var db []*graph.Graph
	for i := 0; i < 5; i++ {
		g := testutil.PathGraph(1, 2, 3, 4)
		tw := g.AddVertex(5)
		g.MustAddEdge(1, tw)
		db = append(db, g)
	}
	return db
}

func TestOrigamiFindsMaximalPatterns(t *testing.T) {
	db := smallDB()
	rng := rand.New(rand.NewSource(13))
	res, err := Mine(db, Options{Support: 5, Walks: 30, Alpha: 0.9, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns sampled")
	}
	// Every graph is identical, so the unique maximal pattern is the
	// whole 4-edge graph; all walks must converge to it.
	for _, p := range res.Patterns {
		if p.G.M() != 4 {
			t.Errorf("maximal pattern has %d edges, want 4", p.G.M())
		}
		if p.Support != 5 {
			t.Errorf("support = %d, want 5", p.Support)
		}
	}
	if res.DistinctMaximal != 1 {
		t.Errorf("distinct maximal = %d, want 1", res.DistinctMaximal)
	}
}

// TestOrigamiScatteredSample pins the sampling behavior on a database
// with several disjoint maximal patterns: walks return a subset, and
// orthogonality thins it further.
func TestOrigamiScatteredSample(t *testing.T) {
	var db []*graph.Graph
	for i := 0; i < 6; i++ {
		g := graph.New(12)
		// Three disjoint motifs per graph with distinct label families.
		for f := 0; f < 3; f++ {
			a := g.AddVertex(graph.Label(10 * (f + 1)))
			b := g.AddVertex(graph.Label(10*(f+1) + 1))
			c := g.AddVertex(graph.Label(10*(f+1) + 2))
			g.MustAddEdge(a, b)
			g.MustAddEdge(b, c)
		}
		db = append(db, g)
	}
	rng := rand.New(rand.NewSource(17))
	res, err := Mine(db, Options{Support: 6, Walks: 40, Alpha: 0.3, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctMaximal < 2 {
		t.Errorf("expected several distinct maximal patterns, got %d", res.DistinctMaximal)
	}
	// Orthogonality: pairwise similarity must be <= alpha.
	for i := range res.Patterns {
		for j := i + 1; j < len(res.Patterns); j++ {
			if s := similarity(res.Patterns[i].G, res.Patterns[j].G); s > 0.3 {
				t.Errorf("patterns %d,%d similarity %.2f > alpha", i, j, s)
			}
		}
	}
}

func TestOrigamiWalkRespectsMaxEdges(t *testing.T) {
	db := smallDB()
	rng := rand.New(rand.NewSource(19))
	res, err := Mine(db, Options{Support: 5, Walks: 10, MaxEdges: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.G.M() > 2 {
			t.Errorf("pattern with %d edges exceeds MaxEdges", p.G.M())
		}
	}
}

func TestOrigamiErrors(t *testing.T) {
	if _, err := Mine(nil, Options{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty DB should error")
	}
	if _, err := Mine(smallDB(), Options{}); err == nil {
		t.Error("nil Rng should error")
	}
}

func TestOrigamiInfrequentDB(t *testing.T) {
	db := []*graph.Graph{testutil.PathGraph(1, 2), testutil.PathGraph(3, 4)}
	rng := rand.New(rand.NewSource(23))
	res, err := Mine(db, Options{Support: 2, Walks: 5, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("nothing is frequent at σ=2, got %d patterns", len(res.Patterns))
	}
}

func TestSimilarity(t *testing.T) {
	a := testutil.PathGraph(1, 2, 1)
	b := testutil.PathGraph(1, 2, 1)
	if s := similarity(a, b); s < 0.99 {
		t.Errorf("identical graphs similarity = %f, want 1", s)
	}
	c := testutil.PathGraph(7, 8)
	if s := similarity(a, c); s != 0 {
		t.Errorf("disjoint-label graphs similarity = %f, want 0", s)
	}
}
