// Package origami reimplements ORIGAMI (Hasan, Chaoji, Salem, Besson &
// Zaki, ICDM 2007): output-space sampling of maximal frequent subgraph
// patterns in the graph-transaction setting, followed by an
// α-orthogonal representative selection. The sampling walks give a
// scattered subset of the maximal pattern space — which is why the
// paper's Figures 9-10 show ORIGAMI returning a sparse sample of mostly
// small patterns and missing the injected skinny ones.
package origami

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"skinnymine/internal/dfscode"
	"skinnymine/internal/graph"
)

// Options configures ORIGAMI.
type Options struct {
	// Support is the minimum graph count σ.
	Support int
	// Walks is the number of random maximal walks.
	Walks int
	// Alpha is the maximum pairwise similarity kept by the orthogonal
	// filter (0..1).
	Alpha float64
	// MaxEdges bounds walk length (0 = unlimited).
	MaxEdges int
	// Rng drives the sampling; required for reproducibility.
	Rng *rand.Rand
}

// Pattern is a sampled maximal pattern.
type Pattern struct {
	G       *graph.Graph
	Support int
}

// Result holds the α-orthogonal representative set.
type Result struct {
	Patterns []*Pattern
	// WalksRun and DistinctMaximal report sampling behavior.
	WalksRun        int
	DistinctMaximal int
}

// Mine runs ORIGAMI over a graph database.
func Mine(db []*graph.Graph, opt Options) (*Result, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("origami: empty database")
	}
	if opt.Rng == nil {
		return nil, fmt.Errorf("origami: Options.Rng is required")
	}
	if opt.Support < 1 {
		opt.Support = 2
	}
	if opt.Walks < 1 {
		opt.Walks = 50
	}
	if opt.Alpha <= 0 {
		opt.Alpha = 0.5
	}

	res := &Result{}
	found := make(map[string]*Pattern)
	for w := 0; w < opt.Walks; w++ {
		res.WalksRun++
		p, sup := randomMaximalWalk(db, opt)
		if p == nil {
			continue
		}
		code := dfscode.MinCodeKey(p)
		if _, dup := found[code]; !dup {
			found[code] = &Pattern{G: p, Support: sup}
		}
	}
	res.DistinctMaximal = len(found)

	var all []*Pattern
	for _, p := range found {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].G.M() != all[j].G.M() {
			return all[i].G.M() > all[j].G.M()
		}
		return dfscode.MinCodeKey(all[i].G) < dfscode.MinCodeKey(all[j].G)
	})
	// α-orthogonal greedy selection.
	for _, p := range all {
		ok := true
		for _, q := range res.Patterns {
			if similarity(p.G, q.G) > opt.Alpha {
				ok = false
				break
			}
		}
		if ok {
			res.Patterns = append(res.Patterns, p)
		}
	}
	return res, nil
}

// randomMaximalWalk grows a random frequent pattern until no extension
// keeps it frequent, returning the maximal pattern and its support.
func randomMaximalWalk(db []*graph.Graph, opt Options) (*graph.Graph, int) {
	// Random frequent seed edge.
	type edgeKey struct{ a, b graph.Label }
	counts := make(map[edgeKey]map[int32]struct{})
	for gi, g := range db {
		for _, e := range g.Edges() {
			a, b := g.Label(e.U), g.Label(e.W)
			if a > b {
				a, b = b, a
			}
			k := edgeKey{a, b}
			if counts[k] == nil {
				counts[k] = make(map[int32]struct{})
			}
			counts[k][int32(gi)] = struct{}{}
		}
	}
	var seeds []edgeKey
	for k, gids := range counts {
		if len(gids) >= opt.Support {
			seeds = append(seeds, k)
		}
	}
	if len(seeds) == 0 {
		return nil, 0
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].a != seeds[j].a {
			return seeds[i].a < seeds[j].a
		}
		return seeds[i].b < seeds[j].b
	})
	k := seeds[opt.Rng.Intn(len(seeds))]
	cur := graph.New(2)
	cur.AddVertex(k.a)
	cur.AddVertex(k.b)
	cur.MustAddEdge(0, 1)
	curSup := len(counts[k])

	for {
		if opt.MaxEdges > 0 && cur.M() >= opt.MaxEdges {
			return cur, curSup
		}
		exts := frequentExtensions(db, cur, opt.Support)
		if len(exts) == 0 {
			return cur, curSup
		}
		pick := exts[opt.Rng.Intn(len(exts))]
		cur = pick.g
		curSup = pick.sup
	}
}

type extension struct {
	g   *graph.Graph
	sup int
}

// frequentExtensions returns all one-edge extensions of p that remain
// frequent in the database (graph-count support).
func frequentExtensions(db []*graph.Graph, p *graph.Graph, sigma int) []extension {
	// Enumerate candidate extensions from embeddings in all graphs.
	type ext struct {
		src, dst int32
		label    graph.Label
	}
	cands := make(map[ext]struct{})
	for _, g := range db {
		graph.EnumerateEmbeddings(p, g, func(mapped []graph.V) bool {
			inv := make(map[graph.V]int32, len(mapped))
			for pi, dv := range mapped {
				inv[dv] = int32(pi)
			}
			for pi, dv := range mapped {
				for _, w := range g.Neighbors(dv) {
					if qj, in := inv[w]; in {
						if !p.HasEdge(graph.V(pi), graph.V(qj)) {
							a, b := int32(pi), qj
							if a > b {
								a, b = b, a
							}
							cands[ext{src: a, dst: b}] = struct{}{}
						}
					} else {
						cands[ext{src: int32(pi), dst: -1, label: g.Label(w)}] = struct{}{}
					}
				}
			}
			return true
		})
	}
	var out []extension
	for x := range cands {
		q := p.Clone()
		if x.dst < 0 {
			u := q.AddVertex(x.label)
			q.MustAddEdge(graph.V(x.src), u)
		} else {
			q.MustAddEdge(graph.V(x.src), graph.V(x.dst))
		}
		sup := 0
		for _, g := range db {
			if graph.HasEmbedding(q, g) {
				sup++
			}
		}
		if sup >= sigma {
			out = append(out, extension{g: q, sup: sup})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return dfscode.MinCodeKey(out[i].g) < dfscode.MinCodeKey(out[j].g)
	})
	return out
}

// similarity is the cosine similarity of label-pair edge feature
// vectors, ORIGAMI's cheap structural similarity.
func similarity(a, b *graph.Graph) float64 {
	fa, fb := features(a), features(b)
	var dot, na, nb float64
	for k, v := range fa {
		dot += float64(v * fb[k])
		na += float64(v * v)
	}
	for _, v := range fb {
		nb += float64(v * v)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func features(g *graph.Graph) map[[2]graph.Label]int {
	f := make(map[[2]graph.Label]int)
	for _, e := range g.Edges() {
		a, b := g.Label(e.U), g.Label(e.W)
		if a > b {
			a, b = b, a
		}
		f[[2]graph.Label{a, b}]++
	}
	return f
}
