package skinnymine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// startShardWorkers serves every shard file of the manifest at path
// behind an httptest server, in shard order, returning the worker
// addresses.
func startShardWorkers(t *testing.T, path string) []string {
	t.Helper()
	dir, base := filepath.Dir(path), filepath.Base(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), base+".shard") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // shard index is single-digit in these tests
	if len(names) == 0 {
		t.Fatalf("no shard files next to %s", path)
	}
	urls := make([]string, len(names))
	for i, name := range names {
		w, err := LoadShardWorkerFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		// The file name is content-addressed with the same CRC-32C the
		// worker pins requests to.
		if !strings.HasSuffix(name, fmt.Sprintf("-%08x", w.CRC())) {
			t.Fatalf("shard file %s does not carry the worker's CRC %08x", name, w.CRC())
		}
		ts := httptest.NewServer(w)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

func fastDistConfig(workers []string) DistributedConfig {
	return DistributedConfig{
		Workers:       workers,
		WorkerRetries: 0,
		RetryBackoff:  5 * time.Millisecond,
	}
}

// TestDistributedIndexMatchesInProcess is the public-surface
// distributed refguard: a snapshot served by a worker fleet answers
// byte-for-byte what the same snapshot answers in-process — including
// under a where constraint and the transaction support measure — with
// every Stage I level flowing through the workers (the snapshot is
// written before anything is materialized).
func TestDistributedIndexMatchesInProcess(t *testing.T) {
	db := randomPublicDB(t, 17, 9)
	ix, err := BuildShardedIndex(db, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.idx")
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	local, err := LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dix, err := LoadDistributedIndexFile(path, fastDistConfig(startShardWorkers(t, path)))
	if err != nil {
		t.Fatal(err)
	}
	defer dix.Close()

	opts := []Options{
		{Support: 2, Length: 4, Delta: 1},
		{Support: 2, Length: 3, Delta: 1, Measure: GraphCount},
		{Support: 2, Length: 4, Delta: 1, Where: "vertices<=6"},
	}
	for _, opt := range opts {
		want, err := local.Mine(opt)
		if err != nil {
			t.Fatalf("%+v: in-process: %v", opt, err)
		}
		got, err := dix.Mine(opt)
		if err != nil {
			t.Fatalf("%+v: distributed: %v", opt, err)
		}
		if !bytes.Equal(resultBytes(t, got), resultBytes(t, want)) {
			t.Errorf("%+v: distributed result differs from in-process", opt)
		}
	}

	health := dix.WorkerHealth()
	if len(health) != 3 {
		t.Fatalf("WorkerHealth reported %d workers, want 3", len(health))
	}
	for _, h := range health {
		if !h.Healthy {
			t.Errorf("worker %d unhealthy after successful mining: %+v", h.Shard, h)
		}
	}
	if local.WorkerHealth() != nil {
		t.Error("in-process index reports worker health")
	}
}

// TestDistributedIndexWorkerUnavailable: with part of the fleet dead, a
// distributed index still serves every level cached in the snapshot,
// while requests needing the dead shard fail with ErrUnavailable (and a
// canceled caller gets its context error instead).
func TestDistributedIndexWorkerUnavailable(t *testing.T) {
	db := randomPublicDB(t, 19, 6)
	ix, err := BuildShardedIndex(db, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cached := Options{Support: 2, Length: 3, Delta: 1}
	want, err := ix.Mine(cached) // materializes levels 1..3 into the snapshot
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.idx")
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	workers := startShardWorkers(t, path)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()
	workers[1] = deadAddr

	dix, err := LoadDistributedIndexFile(path, fastDistConfig(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer dix.Close()

	// Cached band: served entirely locally, fleet state irrelevant.
	got, err := dix.Mine(cached)
	if err != nil {
		t.Fatalf("cached levels must serve with a worker down: %v", err)
	}
	if !bytes.Equal(resultBytes(t, got), resultBytes(t, want)) {
		t.Error("cached-level result differs from the snapshot's origin index")
	}

	// Uncached band: needs the dead shard.
	if _, err := dix.Mine(Options{Support: 2, Length: 5, Delta: 1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("mining past the cache with a dead worker: got %v, want ErrUnavailable", err)
	}
	if h := dix.WorkerHealth()[1]; h.Healthy || h.Err == "" {
		t.Errorf("dead worker health %+v, want unhealthy with detail", h)
	}

	// A caller that gives up first hears about its own deadline, not the
	// fleet.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(5 * time.Millisecond)
	if _, err := dix.MineContext(ctx, Options{Support: 2, Length: 6, Delta: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled distributed mine: got %v, want context.DeadlineExceeded", err)
	}
}

// TestLoadDistributedIndexFileValidation: a plain (unsharded) snapshot
// and a worker list of the wrong arity are rejected at load time with
// errors naming the problem.
func TestLoadDistributedIndexFileValidation(t *testing.T) {
	db := randomPublicDB(t, 23, 4)
	dir := t.TempDir()

	flat, err := BuildIndex(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	flatPath := filepath.Join(dir, "flat.idx")
	if err := flat.WriteSnapshotFile(flatPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDistributedIndexFile(flatPath, fastDistConfig([]string{"localhost:1"})); err == nil ||
		!strings.Contains(err.Error(), "manifest") {
		t.Errorf("plain snapshot accepted as distributed: %v", err)
	}

	sharded, err := BuildShardedIndex(db, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "db.idx")
	if err := sharded.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDistributedIndexFile(path, fastDistConfig([]string{"localhost:1"})); err == nil {
		t.Error("1 worker for 2 shards accepted")
	}
}
