package skinnymine_test

// One benchmark per table and figure of the paper's evaluation
// (Section 6); each wraps the corresponding internal/exp entry point at
// a laptop-friendly scale. `go test -bench=. -benchmem` regenerates
// every result; cmd/experiments prints the same data as tables and
// supports -full for paper-scale parameters. EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"bytes"
	"math/rand"
	"testing"

	"skinnymine"
	"skinnymine/internal/core"
	"skinnymine/internal/exp"
	"skinnymine/internal/graph"
	"skinnymine/internal/shard"
	"skinnymine/internal/synth"
	"skinnymine/internal/testutil"
)

func benchCfg() exp.Config { return exp.Config{Seed: 1, Scale: 0.05} }

// concurrencyWorkload is the parallel-scaling workload (the same
// recipe the cross-concurrency determinism tests pin; see
// testutil.SynthWorkload), mined in greedy mode so Stage II does one
// bounded growth per seed across ~1k seeds. Built once and shared;
// mining does not mutate the data graph.
var concurrencyWorkload *graph.Graph

func benchWorkloadGraph() *graph.Graph {
	if concurrencyWorkload == nil {
		concurrencyWorkload = testutil.SynthWorkload(17, 300)
	}
	return concurrencyWorkload
}

// benchMineConcurrency mines the shared workload end to end (both
// stages) at a fixed worker count. Compare ns/op across the
// BenchmarkMineConcurrency* variants for the scaling curve; output is
// byte-identical at every setting, so they all do the same work.
func benchMineConcurrency(b *testing.B, workers int) {
	g := benchWorkloadGraph()
	opt := core.DefaultOptions(2, 4, 2)
	opt.GreedyGrow = true
	opt.Concurrency = workers
	b.ReportAllocs() // allocs/op is a tracked metric (scripts/bench_baseline.sh)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Mine(g, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Patterns) == 0 {
			b.Fatal("workload mined no patterns")
		}
	}
}

func BenchmarkMineConcurrency1(b *testing.B) { benchMineConcurrency(b, 1) }
func BenchmarkMineConcurrency2(b *testing.B) { benchMineConcurrency(b, 2) }
func BenchmarkMineConcurrency4(b *testing.B) { benchMineConcurrency(b, 4) }
func BenchmarkMineConcurrency8(b *testing.B) { benchMineConcurrency(b, 8) }

// Constrained-mining benchmark: the skewed-label workload (synth.Skew —
// Zipf background labels, rare-label motifs) mined under a selective
// Where constraint, once with pushdown pruning and once evaluating the
// same constraint at output only. Results are byte-identical (pinned by
// the pushdown-equivalence refguard); compare the extensions/op metric
// — candidate extensions examined by Stage II — and ns/op for what the
// pushdown saves. scripts/bench_baseline.sh records both in the
// per-PR bench JSON.

// constrainedWhere forbids the dominant background label and caps
// growth: with Zipf labels most frequent backbones carry a '0', so the
// constraint is highly selective.
const constrainedWhere = "!contains(label='0') && vertices<=9 && skinniness<=1"

var constrainedDB []*skinnymine.Graph

func constrainedWorkload(b *testing.B) []*skinnymine.Graph {
	if constrainedDB == nil {
		// Sized so the unconstrained enumeration stays tractable (the
		// PostFilter variant pays it in full — that is the point).
		rng := rand.New(rand.NewSource(23))
		g := synth.Skew(rng, synth.SkewOptions{N: 100, AvgDeg: 2.0, Labels: 10, Motifs: 3})
		var buf bytes.Buffer
		if err := graph.WriteText(&buf, g); err != nil {
			b.Fatal(err)
		}
		db, err := skinnymine.ReadGraphs(&buf)
		if err != nil {
			b.Fatal(err)
		}
		constrainedDB = db
	}
	return constrainedDB
}

func benchMineConstrained(b *testing.B, noPushdown bool) {
	db := constrainedWorkload(b)
	opt := skinnymine.Options{
		Support: 3, Length: 4, Delta: 1, Concurrency: 1,
		Where: constrainedWhere, NoPushdown: noPushdown,
	}
	b.ReportAllocs()
	b.ResetTimer()
	extensions := 0
	for i := 0; i < b.N; i++ {
		res, err := skinnymine.MineDB(db, opt)
		if err != nil {
			b.Fatal(err)
		}
		extensions += res.Stats.ExtensionsTried
	}
	b.ReportMetric(float64(extensions)/float64(b.N), "extensions/op")
}

func BenchmarkMineConstrainedPushdown(b *testing.B)   { benchMineConstrained(b, false) }
func BenchmarkMineConstrainedPostFilter(b *testing.B) { benchMineConstrained(b, true) }

// Sharded-mining benchmark: a six-graph transaction database mined end
// to end (Stage I + Stage II, engine construction included — sharding
// is a per-database cost) unsharded and at P ∈ {2, 4}. Output is
// byte-identical at every setting (the sharding refguards), so the
// variants do the same logical work; compare ns/op for what the
// shard-parallel Stage I and the cross-shard merge cost or save.
// scripts/bench_baseline.sh records the curve per PR.
var shardBenchDB []*graph.Graph

func benchShardDB() []*graph.Graph {
	if shardBenchDB == nil {
		for i := int64(0); i < 6; i++ {
			shardBenchDB = append(shardBenchDB, testutil.SynthWorkload(20+i, 120))
		}
	}
	return shardBenchDB
}

func benchMineSharded(b *testing.B, shards int) {
	db := benchShardDB()
	opt := core.DefaultOptions(2, 4, 1)
	opt.GreedyGrow = true
	opt.Concurrency = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var (
			res *core.Result
			err error
		)
		if shards <= 1 {
			res, err = core.MineDB(db, opt)
		} else {
			eng, engErr := shard.New(db, opt.Support, shards)
			if engErr != nil {
				b.Fatal(engErr)
			}
			res, err = eng.Mine(opt)
		}
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Patterns) == 0 {
			b.Fatal("workload mined no patterns")
		}
	}
}

func BenchmarkMineSharded1(b *testing.B) { benchMineSharded(b, 1) }
func BenchmarkMineSharded2(b *testing.B) { benchMineSharded(b, 2) }
func BenchmarkMineSharded4(b *testing.B) { benchMineSharded(b, 4) }

// BenchmarkTables12_DataSettings regenerates the Table 1/2 data sets
// (generation cost only; the settings themselves are constants).
func BenchmarkTables12_DataSettings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunPatternDistribution(benchCfg(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDistribution(b *testing.B, gid int) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunPatternDistribution(benchCfg(), gid)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Hists) != 4 {
			b.Fatal("missing histograms")
		}
	}
}

// BenchmarkFig4_GID1 .. BenchmarkFig8_GID5 regenerate the pattern-size
// distributions of Figures 4-8.
func BenchmarkFig4_GID1(b *testing.B) { benchDistribution(b, 1) }
func BenchmarkFig5_GID2(b *testing.B) { benchDistribution(b, 2) }
func BenchmarkFig6_GID3(b *testing.B) { benchDistribution(b, 3) }
func BenchmarkFig7_GID4(b *testing.B) { benchDistribution(b, 4) }
func BenchmarkFig8_GID5(b *testing.B) { benchDistribution(b, 5) }

// BenchmarkTable3_SkinninessLadder regenerates the Table 3 experiment.
func BenchmarkTable3_SkinninessLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunSkinninessLadder(exp.Config{Seed: 5, Scale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatal("ladder incomplete")
		}
	}
}

// BenchmarkFig9_Transaction and BenchmarkFig10_Transaction regenerate
// the graph-transaction comparison.
func BenchmarkFig9_Transaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTransaction(benchCfg(), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_Transaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTransaction(benchCfg(), true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11_VsMoSS regenerates the SkinnyMine-vs-MoSS curve.
func BenchmarkFig11_VsMoSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunVsMoSS(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12_VsSUBDUE regenerates the SkinnyMine-vs-SUBDUE curve.
func BenchmarkFig12_VsSUBDUE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunVsSUBDUE(exp.Config{Seed: 1, Scale: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13_VsSpiderMine regenerates the SkinnyMine-vs-SpiderMine
// curve.
func BenchmarkFig13_VsSpiderMine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunVsSpiderMine(exp.Config{Seed: 1, Scale: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14_Scalability regenerates the stage-split scalability
// curve (Figure 15's pattern counts come with it).
func BenchmarkFig14_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.RunScalability(exp.Config{Seed: 2, Scale: 0.005})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 6 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkFig16_DiamMineVsL regenerates the DiamMine runtime curve
// (Figure 17's LevelGrow curve comes from the same run).
func BenchmarkFig16_DiamMineVsL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunDiameterConstraint(exp.Config{Seed: 7, Scale: 0.05}, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18_LevelGrowVsDelta regenerates the δ sweep (Figure 19's
// largest-pattern sizes come from the same run).
func BenchmarkFig18_LevelGrowVsDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunSkinninessConstraint(exp.Config{Seed: 9, Scale: 0.02}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig20_RuntimeTable regenerates the five-algorithm runtime
// table.
func BenchmarkFig20_RuntimeTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.RunRuntimeTable(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 5 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFig21_22_DBLP regenerates the DBLP case study.
func BenchmarkFig21_22_DBLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunDBLP(exp.Config{Seed: 11, Scale: 0.08}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig23_24_Weibo regenerates the Weibo case study.
func BenchmarkFig23_24_Weibo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunWeibo(exp.Config{Seed: 13, Scale: 0.08}); err != nil {
			b.Fatal(err)
		}
	}
}
