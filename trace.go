package skinnymine

import (
	"skinnymine/internal/obs"
)

// Trace records the spans of one mining request: per-level Stage I
// timings (edge, concatenation and merge candidate generation), the
// cross-shard support recount, Stage II growth, and — on a distributed
// index — every worker RPC with its retry/hedge outcome. Attach one to
// a request via Options.Trace, mine, then read Spans.
//
// Tracing is observation only: a traced request returns byte-identical
// results to an untraced one (pinned by TestTraceDoesNotChangeResults).
// A Trace is safe for concurrent use by the mining workers but should
// not be shared across requests — spans from both would interleave.
type Trace struct {
	t *obs.Trace
}

// NewTrace returns an empty trace ready to attach to Options.Trace.
func NewTrace() *Trace { return &Trace{t: obs.NewTrace()} }

// TraceSpan is one completed span: a named timed region with integer
// or string attributes (level, candidate counts, RPC outcome, ...).
// StartUs is the offset from the trace's first span start.
type TraceSpan struct {
	Name       string         `json:"name"`
	StartUs    int64          `json:"start_us"`
	DurationUs int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Spans returns the completed spans in completion order. Calling it
// mid-request is safe and returns the spans finished so far.
func (t *Trace) Spans() []TraceSpan {
	if t == nil || t.t == nil {
		return nil
	}
	raw := t.t.Snapshot()
	out := make([]TraceSpan, len(raw))
	for i, s := range raw {
		out[i] = TraceSpan{Name: s.Name, StartUs: s.StartUs, DurationUs: s.DurationUs, Attrs: s.Attrs}
	}
	return out
}

// LatencyBucket is one cumulative histogram bucket: the count of
// samples at or below LeMs milliseconds.
type LatencyBucket struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// LatencySnapshot is a point-in-time latency histogram: total count,
// sum and max in milliseconds, plus cumulative fixed-boundary buckets
// (Prometheus le semantics; the implicit +Inf bucket equals Count).
type LatencySnapshot struct {
	Count   int64           `json:"count"`
	SumMs   float64         `json:"sum_ms"`
	MaxMs   float64         `json:"max_ms"`
	Buckets []LatencyBucket `json:"buckets"`
}

func latencySnapshot(s obs.HistogramSnapshot) LatencySnapshot {
	out := LatencySnapshot{Count: s.Count, SumMs: s.SumMs, MaxMs: s.MaxMs,
		Buckets: make([]LatencyBucket, len(s.Buckets))}
	for i, b := range s.Buckets {
		out.Buckets[i] = LatencyBucket{LeMs: b.LeMs, Count: b.Count}
	}
	return out
}

// WorkerRPCStats is one shard worker's cumulative RPC counters on a
// distributed index: request/retry/hedge/error totals, the permanent
// (409) and unavailable (503) status counts, health flip count, and
// the RPC latency histogram. The serving daemon exposes these under
// /metrics "workers".
type WorkerRPCStats struct {
	Addr              string          `json:"addr"`
	Shard             int             `json:"shard"`
	Healthy           bool            `json:"healthy"`
	LastErr           string          `json:"last_err,omitempty"`
	Requests          int64           `json:"requests"`
	Retries           int64           `json:"retries"`
	Hedges            int64           `json:"hedges"`
	Errors            int64           `json:"errors"`
	Status409         int64           `json:"status_409"`
	Status503         int64           `json:"status_503"`
	HealthTransitions int64           `json:"health_transitions"`
	Latency           LatencySnapshot `json:"latency_ms"`
}

// WorkerRPCStats returns per-worker RPC counters ordered by shard, or
// nil for a non-distributed index. Counters are cumulative since load.
func (ix *Index) WorkerRPCStats() []WorkerRPCStats {
	if ix.eng == nil {
		return nil
	}
	ss := ix.eng.WorkerRPCStats()
	if ss == nil {
		return nil
	}
	out := make([]WorkerRPCStats, len(ss))
	for i, s := range ss {
		out[i] = WorkerRPCStats{
			Addr: s.Addr, Shard: s.Shard, Healthy: s.Healthy, LastErr: s.LastErr,
			Requests: s.Requests, Retries: s.Retries, Hedges: s.Hedges, Errors: s.Errors,
			Status409: s.Status409, Status503: s.Status503,
			HealthTransitions: s.HealthTransitions,
			Latency:           latencySnapshot(s.Latency),
		}
	}
	return out
}
