package skinnymine

import (
	"fmt"

	"skinnymine/internal/constraint"
	"skinnymine/internal/graph"
)

// Pattern morphing: answering one request from another request's
// result. Because mining is complete enumeration over the band, a
// result mined under a provably weaker request contains everything a
// tighter request would find — so the tighter answer is a pure
// post-filter (plus topk re-selection) over the cached patterns, no
// search at all. CanMorph decides when the containment is provable,
// Morph performs the rewrite, and FamilyOptions builds the weakest
// common superset of a query family — the single plan a shared-plan
// batch executes once and forks per member. The serving daemon's
// morphing cache and /v1/batch family execution are built on these
// three; the pinned invariant throughout is that a morphed result is
// byte-identical to mining the tighter request fresh.

// lengthSet returns the set of canonical diameter lengths the request
// mines: SeedLengths when restricted, the whole band otherwise.
func lengthSet(o Options) map[int]bool {
	s := make(map[int]bool)
	if len(o.SeedLengths) > 0 {
		for _, l := range o.SeedLengths {
			s[l] = true
		}
		return s
	}
	lo := o.Length
	if o.MinLength > 0 {
		lo = o.MinLength
	}
	for l := lo; l <= o.Length; l++ {
		s[l] = true
	}
	return s
}

// CanMorph reports that to's result is provably the post-filtered form
// of from's: same measure and support floor, with to tightening from
// only along anti-monotone dimensions — a length set contained in
// from's, a skinniness bound no looser, and a Where that keeps every
// conjunct of from's while adding only anti-monotone ones
// (constraint.Subsumes). Requests that are greedy (MaximalOnly),
// closed, or budgeted (MaxPatterns) never morph: their outputs are not
// pure filters of the enumeration. from must carry no topk clause — a
// truncated result proves nothing — while to may. False is always
// conservative: it declines to prove, it never lies.
//
// The support floor σ must match exactly, even though a higher floor
// only shrinks the result set. Stage I's path-doubling join thresholds
// every intermediate level at σ, and a path's distinct-subgraph count
// is not anti-monotone across doubling (many long paths can share one
// rare half), so mining fresh at a higher σ can drop a pattern whose
// own count still clears it — containment holds, byte-identity does
// not, and byte-identity is the invariant morphing is pinned to. To
// tighten support morphably, say it in the constraint instead: a
// `support>=N` conjunct under GraphCount classifies anti-monotone and
// rides the pinned pushdown equivalence.
func CanMorph(from, to Options) bool {
	if from.stashWhere() != nil || to.stashWhere() != nil {
		return false
	}
	if from.Validate() != nil || to.Validate() != nil {
		return false
	}
	if from.MaximalOnly || to.MaximalOnly || from.ClosedOnly || to.ClosedOnly {
		return false
	}
	if from.MaxPatterns > 0 || to.MaxPatterns > 0 {
		return false
	}
	if from.Measure != to.Measure {
		return false
	}
	if from.Support != to.Support {
		return false
	}
	fromLens := lengthSet(from)
	for l := range lengthSet(to) {
		if !fromLens[l] {
			return false
		}
	}
	// Negative δ is unbounded: it morphs to any bound, and only an
	// unbounded from covers an unbounded to.
	if from.Delta >= 0 && (to.Delta < 0 || to.Delta > from.Delta) {
		return false
	}
	fc, _ := from.parsedWhere()
	tc, _ := to.parsedWhere()
	return constraint.Subsumes(fc, tc, to.Measure == GraphCount)
}

// Morph answers the to request from res, a result mined under from,
// without searching: it keeps the cached patterns inside to's length
// set, skinniness bound and Where expression (judged against the same
// attribute view a fresh mine's output filter would see, support
// counted under to's measure), then applies to's topk clause. The
// output is byte-identical to mining to fresh — the serving daemon's
// equivalence harness pins exactly that — and carries zero Stats,
// because no search ran. Errors when CanMorph(from, to) does not hold.
func Morph(res *Result, from, to Options) (*Result, error) {
	if err := from.stashWhere(); err != nil {
		return nil, err
	}
	if err := to.stashWhere(); err != nil {
		return nil, err
	}
	if !CanMorph(from, to) {
		return nil, fmt.Errorf("skinnymine: cannot morph: target is not a provable restriction of the source request")
	}
	out := &Result{Patterns: make([]*Pattern, 0, len(res.Patterns))}
	if len(res.Patterns) == 0 {
		return out, nil
	}
	lens := lengthSet(to)
	m := to.measure()
	c, _ := to.parsedWhere()
	var accept func(g *graph.Graph, skinniness int32, sup int) bool
	if c != nil && c.Expr != nil {
		lt := res.Patterns[0].lt
		// The same binding and attribute view lower installs as the
		// mining output filter, so a morph judges each pattern against
		// the facts a fresh mine would.
		b := c.Bind(lt, to.Measure == GraphCount)
		accept = func(g *graph.Graph, skinniness int32, sup int) bool {
			return b.Accept(constraint.Attrs{
				Vertices: g.N(), Edges: g.M(),
				Skinniness: int(skinniness), Support: sup,
				Labels: g.Labels(),
			})
		}
	}
	for _, p := range res.Patterns {
		if !lens[int(p.p.DiamLen)] {
			continue
		}
		if to.Delta >= 0 && int(p.p.MaxLevel()) > to.Delta {
			continue
		}
		if accept != nil && !accept(p.p.G, p.p.MaxLevel(), p.p.Embs.Count(m)) {
			continue
		}
		out.Patterns = append(out.Patterns, p)
	}
	if c != nil && c.TopK != nil {
		out.Patterns = applyTopK(out.Patterns, c.TopK, m)
	}
	return out, nil
}

// FamilyOptions builds the weakest common superset of a query family:
// the widest skinniness bound, the union of the members' length sets
// (SeedLengths when the union has gaps, so the shared mine still skips
// lengths no member wants), and the Where conjuncts every member
// shares. Mining the family once and morphing each member out of it
// costs one Stage I pass instead of K — the shared-plan batch
// execution in the serving daemon.
//
// ok is false when the members are structurally unmixable: none given,
// one fails validation, one is greedy/closed/budgeted, or measures or
// support floors differ (σ must match exactly — see CanMorph; a
// support floor a member wants tighter belongs in its Where as a
// `support>=N` conjunct). ok true means the returned options are a
// sound superset of every member; whether a given member can then be
// forked out of it is still CanMorph's call (a member whose private
// conjuncts are not all anti-monotone cannot), and the family stays a
// valid superset for the members that can.
func FamilyOptions(members []Options) (Options, bool) {
	if len(members) == 0 {
		return Options{}, false
	}
	for i := range members {
		if members[i].stashWhere() != nil || members[i].Validate() != nil {
			return Options{}, false
		}
		m := &members[i]
		if m.MaximalOnly || m.ClosedOnly || m.MaxPatterns > 0 {
			return Options{}, false
		}
		if m.Measure != members[0].Measure || m.Support != members[0].Support {
			return Options{}, false
		}
	}
	delta := members[0].Delta
	union := lengthSet(members[0])
	for _, m := range members[1:] {
		if delta >= 0 && (m.Delta < 0 || m.Delta > delta) {
			delta = m.Delta
		}
		for l := range lengthSet(m) {
			union[l] = true
		}
	}
	sigma := members[0].Support
	lo, hi := 0, 0
	for l := range union {
		if lo == 0 || l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	fam := Options{Support: sigma, Length: hi, Delta: delta, Measure: members[0].Measure}
	if lo < hi {
		fam.MinLength = lo
	}
	if len(union) != hi-lo+1 {
		for l := lo; l <= hi; l++ {
			if union[l] {
				fam.SeedLengths = append(fam.SeedLengths, l)
			}
		}
	}
	// Intersecting a constraint with itself canonicalizes it (sorted,
	// deduplicated, topk stripped) before the fold across members.
	c0, _ := members[0].parsedWhere()
	inter := constraint.Intersect(c0, c0)
	for _, m := range members[1:] {
		c, _ := m.parsedWhere()
		inter = constraint.Intersect(inter, c)
	}
	if inter.Expr != nil {
		fam.Where = inter.String()
		fam.WhereExpr = &Constraint{c: inter}
	}
	return fam, true
}
