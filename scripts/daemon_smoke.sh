#!/usr/bin/env bash
# End-to-end smoke test of the serving subsystem: build the binaries,
# mine a synthetic graph with the CLI (emitting a snapshot), serve the
# snapshot with skinnymined, and check that /v1/mine returns the same
# result the CLI printed, that the request cache hits on a repeat, that
# /v1/batch deduplicates (N duplicates -> one mining run, verified via
# the /metrics cache counters), that a sharded snapshot serves results
# byte-identical to the unsharded CLI, and that /v1/backbones and
# /healthz answer. The distributed section then serves a sharded
# snapshot through two `skinnymined -worker` processes plus a
# coordinator, diffs the output byte-for-byte against the in-process
# CLI, kills a worker (expecting cached levels to keep serving and
# deeper requests to fail with a clean 503), and restarts it
# (expecting full recovery). Observability checks ride along: request
# IDs are generated/echoed and greppable from the coordinator's access
# log through every worker's candidates log, /metrics carries the 404
# counter and latency histograms (plus per-worker RPC counters on a
# coordinator), ?trace=1 returns spans without changing the result,
# and ?format=prom renders the Prometheus exposition. The stitched
# tracing section mines through the fleet with tracing on, diffs the
# result byte-for-byte against the CLI (tracing changes visibility,
# never bytes), and asserts /debug/traces?id= returns one span tree
# whose worker.rpc envelopes contain the workers' own spans with
# non-negative offsets; skinnytop -once must render the fleet.
# Requires curl and jq.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
daemon_pid=""
daemon2_pid=""
coord_pid=""
worker0_pid=""
worker1_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  [ -n "$daemon2_pid" ] && kill "$daemon2_pid" 2>/dev/null || true
  [ -n "$coord_pid" ] && kill "$coord_pid" 2>/dev/null || true
  [ -n "$worker0_pid" ] && kill "$worker0_pid" 2>/dev/null || true
  [ -n "$worker1_pid" ] && kill "$worker1_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# Reuse prebuilt binaries (CI sets BIN_DIR after its build step) or
# build them here.
if [ -n "${BIN_DIR:-}" ] && [ -x "$BIN_DIR/skinnymined" ] && [ -x "$BIN_DIR/skinnymine" ] \
   && [ -x "$BIN_DIR/skinnytop" ]; then
  mkdir -p "$workdir/bin"
  cp "$BIN_DIR/skinnymine" "$BIN_DIR/skinnymined" "$BIN_DIR/skinnytop" "$workdir/bin/"
else
  go build -o "$workdir/bin/" ./cmd/...
fi

# Synthetic database: two copies of a 5-stop route (labels 0-4), each
# with a label-5 spur, plus a noise edge — the repo's test workload.
cat > "$workdir/graph.txt" <<'EOF'
t # 0
v 0 0
v 1 1
v 2 2
v 3 3
v 4 4
v 5 5
v 6 0
v 7 1
v 8 2
v 9 3
v 10 4
v 11 5
v 12 6
v 13 7
e 0 1
e 1 2
e 2 3
e 3 4
e 2 5
e 6 7
e 7 8
e 8 9
e 9 10
e 8 11
e 12 13
EOF

# The same workload as a three-graph transaction database, for the
# sharded sections (one graph per route copy plus the noise pair).
cat > "$workdir/graphdb.txt" <<'EOF'
t # 0
v 0 0
v 1 1
v 2 2
v 3 3
v 4 4
v 5 5
e 0 1
e 1 2
e 2 3
e 3 4
e 2 5
t # 1
v 0 0
v 1 1
v 2 2
v 3 3
v 4 4
v 5 5
e 0 1
e 1 2
e 2 3
e 3 4
e 2 5
t # 2
v 0 6
v 1 7
e 0 1
EOF

echo "== CLI mine + snapshot"
"$workdir/bin/skinnymine" -input "$workdir/graph.txt" -support 2 -length 4 -delta 1 \
  -json -snapshot "$workdir/city.idx" > "$workdir/cli.json"
[ -s "$workdir/city.idx" ] || { echo "FAIL: snapshot not written"; exit 1; }

port=$((20000 + RANDOM % 20000))
echo "== starting skinnymined from the snapshot on :$port"
"$workdir/bin/skinnymined" -index "$workdir/city.idx" -addr "127.0.0.1:$port" \
  > "$workdir/daemon.log" 2>&1 &
daemon_pid=$!

base="http://127.0.0.1:$port"
for i in $(seq 1 50); do
  if curl -sf "$base/healthz" > "$workdir/health.json" 2>/dev/null; then break; fi
  kill -0 "$daemon_pid" 2>/dev/null || { echo "FAIL: daemon died"; cat "$workdir/daemon.log"; exit 1; }
  sleep 0.2
done
jq -e '.status == "ok" and .graphs == 1 and .sigma == 2 and .shards == 1' "$workdir/health.json" > /dev/null \
  || { echo "FAIL: healthz says $(cat "$workdir/health.json")"; exit 1; }

echo "== /v1/mine matches CLI -json output"
curl -sf "$base/v1/mine" -d '{"length":4,"delta":1}' > "$workdir/served.json"
# Timings are wall-clock; everything else must be byte-identical.
norm='del(.stats.diammine_ms, .stats.levelgrow_ms)'
diff <(jq "$norm" "$workdir/cli.json") <(jq "$norm" "$workdir/served.json") \
  || { echo "FAIL: served result differs from the CLI's"; exit 1; }

echo "== repeat request hits the cache"
curl -sf "$base/v1/mine" -d '{"length":4,"delta":1}' > /dev/null
curl -sf "$base/metrics" > "$workdir/metrics.json"
jq -e '.mine.cache_hits >= 1 and .mine.runs == 1' "$workdir/metrics.json" > /dev/null \
  || { echo "FAIL: metrics say $(cat "$workdir/metrics.json")"; exit 1; }

echo "== /v1/batch of duplicates performs no mine at all"
# Three copies of a NEW request plus one duplicate of the cached one:
# the batch must report 2 unique entries and 1 cache hit — and the new
# unique entry (a tighter δ of the cached request) must be answered by
# MORPHING the cached superset result, so the run counter must not move.
curl -sf "$base/v1/batch" -d '{"requests":[
    {"length":4,"delta":0},
    {"length":4,"delta":0},
    {"length":4,"delta":0},
    {"length":4,"delta":1}]}' > "$workdir/batch.json"
jq -e '.items == 4 and .unique == 2 and .cache_hits == 1' "$workdir/batch.json" > /dev/null \
  || { echo "FAIL: batch accounting says $(cat "$workdir/batch.json" | jq '{items,unique,cache_hits}')"; exit 1; }
jq -e '[.results[].source] == ["morphed","duplicate","duplicate","hit"]' "$workdir/batch.json" > /dev/null \
  || { echo "FAIL: batch sources $(jq '[.results[].source]' "$workdir/batch.json")"; exit 1; }
curl -sf "$base/metrics" > "$workdir/metrics2.json"
jq -e '.mine.runs == 1 and .mine.morphed == 1 and .batch.items == 4 and .batch.unique == 2 and .batch.deduped == 2' \
  "$workdir/metrics2.json" > /dev/null \
  || { echo "FAIL: post-batch metrics say $(cat "$workdir/metrics2.json")"; exit 1; }

echo "== batched result matches the single-request result"
diff <(jq -S "$norm" "$workdir/served.json") \
     <(jq -S ".results[3].result | $norm" "$workdir/batch.json") \
  || { echo "FAIL: batched result differs from /v1/mine's"; exit 1; }

echo "== morphing: a constrained request is forked from the cached superset"
# The unconstrained {length:4, delta:1} result is warm; a request adding
# an anti-monotone constraint must be served by post-filtering it
# (X-Result-Source: morphed, no new mining run) and its patterns must be
# byte-identical to a fresh CLI mine under the same constraint. Stats
# are excluded: a morphed body honestly reports zero search counters.
curl -sf -D "$workdir/morph.headers" "$base/v1/mine" \
  -d '{"length":4,"delta":1,"where":"vertices<=4"}' > "$workdir/morphed.json"
grep -qi '^X-Result-Source: morphed' "$workdir/morph.headers" \
  || { echo "FAIL: constrained request not morphed: $(grep -i x-result-source "$workdir/morph.headers")"; exit 1; }
"$workdir/bin/skinnymine" -input "$workdir/graph.txt" -support 2 -length 4 -delta 1 \
  -where 'vertices<=4' -json > "$workdir/cli-constrained.json"
diff <(jq -S '.patterns' "$workdir/cli-constrained.json") \
     <(jq -S '.patterns' "$workdir/morphed.json") \
  || { echo "FAIL: morphed patterns differ from a fresh constrained mine"; exit 1; }

echo "== query family: one shared mine serves a batch of variants"
# Two uncached requests differing only in an anti-monotone constraint
# form a family: the weakest member carries the one mining run, the
# other forks from it (family_shared).
curl -sf "$base/v1/batch" -d '{"requests":[
    {"length":3,"delta":1},
    {"length":3,"delta":1,"where":"edges<=4"}]}' > "$workdir/family.json"
jq -e '[.results[].source] == ["miss","family_shared"]' "$workdir/family.json" > /dev/null \
  || { echo "FAIL: family sources $(jq '[.results[].source]' "$workdir/family.json")"; exit 1; }
curl -sf "$base/metrics" > "$workdir/metrics-family.json"
jq -e '.mine.morphed >= 1 and .mine.family_shared >= 1' "$workdir/metrics-family.json" > /dev/null \
  || { echo "FAIL: optimizer counters say $(jq '.mine' "$workdir/metrics-family.json")"; exit 1; }
"$workdir/bin/skinnymine" -input "$workdir/graph.txt" -support 2 -length 3 -delta 1 \
  -where 'edges<=4' -json > "$workdir/cli-family.json"
diff <(jq -S '.patterns' "$workdir/cli-family.json") \
     <(jq -S '.results[1].result.patterns' "$workdir/family.json") \
  || { echo "FAIL: family-forked patterns differ from a fresh constrained mine"; exit 1; }

echo "== observability: request IDs, 404 accounting, latency histograms"
rid=$(curl -sf -o /dev/null -D - "$base/healthz" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-request-id"{print $2}')
[ -n "$rid" ] || { echo "FAIL: no X-Request-Id generated"; exit 1; }
rid=$(curl -sf -H 'X-Request-Id: smoke-echo-check' -o /dev/null -D - "$base/healthz" \
  | tr -d '\r' | awk -F': ' 'tolower($1)=="x-request-id"{print $2}')
[ "$rid" = "smoke-echo-check" ] || { echo "FAIL: request ID not echoed, got '$rid'"; exit 1; }
curl -s -o /dev/null "$base/no/such/path"
curl -sf "$base/metrics" > "$workdir/metrics3.json"
jq -e '.requests_total.not_found >= 1
       and .mine.latency_ms.count == .mine.latency_count
       and (.mine.latency_ms.buckets | length) > 0
       and .admission_wait_ms.count >= .mine.latency_count
       and (.mine | has("slow_queries"))' "$workdir/metrics3.json" > /dev/null \
  || { echo "FAIL: observability metrics say $(cat "$workdir/metrics3.json")"; exit 1; }

echo "== ?trace=1 returns spans and an unchanged result"
curl -sf "$base/v1/mine?trace=1" -d '{"length":4,"delta":1}' > "$workdir/trace.json"
jq -e '.request_id != "" and .total_ms > 0
       and ([.spans[].name] | (index("stage1") != null and index("stage2") != null))' \
  "$workdir/trace.json" > /dev/null \
  || { echo "FAIL: trace response says $(cat "$workdir/trace.json" | jq '{request_id,total_ms,spans:[.spans[].name]}')"; exit 1; }
diff <(jq "$norm" "$workdir/served.json") <(jq ".result | $norm" "$workdir/trace.json") \
  || { echo "FAIL: traced result differs from the untraced one"; exit 1; }

echo "== Prometheus text exposition"
curl -sf "$base/metrics?format=prom" > "$workdir/prom.txt"
grep -q '^skinnymine_mine_runs_total ' "$workdir/prom.txt" \
  || { echo "FAIL: prom exposition lacks mine_runs_total"; exit 1; }
grep -q '^skinnymine_mine_morphed_total ' "$workdir/prom.txt" \
  || { echo "FAIL: prom exposition lacks mine_morphed_total"; exit 1; }
grep -q '^skinnymine_mine_family_shared_total ' "$workdir/prom.txt" \
  || { echo "FAIL: prom exposition lacks mine_family_shared_total"; exit 1; }
grep -q 'skinnymine_mine_latency_ms_bucket{le="+Inf"}' "$workdir/prom.txt" \
  || { echo "FAIL: prom exposition lacks the latency histogram"; exit 1; }
grep -q 'skinnymine_requests_total{endpoint="mine"}' "$workdir/prom.txt" \
  || { echo "FAIL: prom exposition lacks per-endpoint request counters"; exit 1; }

echo "== /v1/backbones serves Stage I patterns"
curl -sf "$base/v1/backbones?l=4" | jq -e '.count >= 1' > /dev/null \
  || { echo "FAIL: no backbones served"; exit 1; }

echo "== malformed request is a 4xx"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/mine" -d '{"length":')
[ "$code" = 400 ] || { echo "FAIL: malformed request returned $code"; exit 1; }

echo "== sharded CLI mine is byte-identical to unsharded"
"$workdir/bin/skinnymine" -input "$workdir/graphdb.txt" -support 2 -length 4 -delta 1 \
  -json > "$workdir/db-flat.json"
"$workdir/bin/skinnymine" -input "$workdir/graphdb.txt" -support 2 -length 4 -delta 1 \
  -shards 3 -json -snapshot "$workdir/db.idx" > "$workdir/db-sharded.json"
diff <(jq "$norm" "$workdir/db-flat.json") <(jq "$norm" "$workdir/db-sharded.json") \
  || { echo "FAIL: sharded CLI output differs from unsharded"; exit 1; }
[ -s "$workdir/db.idx" ] || { echo "FAIL: sharded manifest not written"; exit 1; }
nshards=$(ls "$workdir"/db.idx.shard* 2>/dev/null | wc -l)
[ "$nshards" = 3 ] || { echo "FAIL: expected 3 shard files, found $nshards"; exit 1; }

port2=$((20000 + RANDOM % 20000))
echo "== serving the sharded snapshot on :$port2"
"$workdir/bin/skinnymined" -index "$workdir/db.idx" -addr "127.0.0.1:$port2" \
  > "$workdir/daemon2.log" 2>&1 &
daemon2_pid=$!
base2="http://127.0.0.1:$port2"
for i in $(seq 1 50); do
  if curl -sf "$base2/healthz" > "$workdir/health2.json" 2>/dev/null; then break; fi
  kill -0 "$daemon2_pid" 2>/dev/null || { echo "FAIL: sharded daemon died"; cat "$workdir/daemon2.log"; exit 1; }
  sleep 0.2
done
jq -e '.status == "ok" and .graphs == 3 and .shards == 3' "$workdir/health2.json" > /dev/null \
  || { echo "FAIL: sharded healthz says $(cat "$workdir/health2.json")"; exit 1; }
curl -sf "$base2/v1/mine" -d '{"length":4,"delta":1}' > "$workdir/db-served.json"
diff <(jq "$norm" "$workdir/db-flat.json") <(jq "$norm" "$workdir/db-served.json") \
  || { echo "FAIL: sharded daemon result differs from the unsharded CLI's"; exit 1; }

echo "== corrupted sharded snapshot is refused"
shardfile=$(ls "$workdir"/db.idx.shard* | head -1)
printf '\x00' | dd of="$shardfile" bs=1 seek=20 count=1 conv=notrunc 2>/dev/null
if "$workdir/bin/skinnymined" -index "$workdir/db.idx" -addr "127.0.0.1:1" > "$workdir/corrupt.log" 2>&1; then
  echo "FAIL: daemon served a corrupted sharded snapshot"; exit 1
fi
grep -qi "checksum\|corrupt\|inconsistent" "$workdir/corrupt.log" \
  || { echo "FAIL: corruption error not reported: $(cat "$workdir/corrupt.log")"; exit 1; }

echo "== distributed: two workers + coordinator match the in-process CLI"
# Fresh 2-shard snapshot with only levels {1,2} materialized, so every
# deeper level must flow through the worker fleet.
"$workdir/bin/skinnymine" -input "$workdir/graphdb.txt" -support 2 -length 2 -delta 1 \
  -shards 2 -json -snapshot "$workdir/dist.idx" > /dev/null
wport0=$((20000 + RANDOM % 20000)); wport1=$((wport0 + 1)); cport=$((wport0 + 2))
shard0=$(ls "$workdir"/dist.idx.shard0-*)
shard1=$(ls "$workdir"/dist.idx.shard1-*)
"$workdir/bin/skinnymined" -worker "$shard0" -addr "127.0.0.1:$wport0" \
  > "$workdir/worker0.log" 2>&1 &
worker0_pid=$!
"$workdir/bin/skinnymined" -worker "$shard1" -addr "127.0.0.1:$wport1" \
  > "$workdir/worker1.log" 2>&1 &
worker1_pid=$!
"$workdir/bin/skinnymined" -index "$workdir/dist.idx" -addr "127.0.0.1:$cport" \
  -workers "127.0.0.1:$wport0,127.0.0.1:$wport1" \
  -worker-retries 1 -worker-backoff 50ms -worker-probe 100ms \
  > "$workdir/coord.log" 2>&1 &
coord_pid=$!
basec="http://127.0.0.1:$cport"
for i in $(seq 1 50); do
  if curl -sf "$basec/healthz" > "$workdir/healthc.json" 2>/dev/null \
     && jq -e '[.workers[].healthy] | all' "$workdir/healthc.json" > /dev/null 2>&1; then
    break
  fi
  kill -0 "$coord_pid" 2>/dev/null || { echo "FAIL: coordinator died"; cat "$workdir/coord.log"; exit 1; }
  sleep 0.2
done
jq -e '.shards == 2 and (.workers | length) == 2 and ([.workers[].healthy] | all)' \
  "$workdir/healthc.json" > /dev/null \
  || { echo "FAIL: coordinator healthz says $(cat "$workdir/healthc.json")"; exit 1; }
curl -sf "$basec/v1/mine" -d '{"length":4,"delta":1}' > "$workdir/dist-served.json"
diff <(jq "$norm" "$workdir/db-flat.json") <(jq "$norm" "$workdir/dist-served.json") \
  || { echo "FAIL: distributed result differs from the unsharded CLI's"; exit 1; }

echo "== killed worker: cached levels keep serving, deeper requests 503 cleanly"
kill -9 "$worker1_pid" 2>/dev/null
wait "$worker1_pid" 2>/dev/null || true
worker1_pid=""
# Levels baked into the snapshot never touch the fleet.
curl -sf "$basec/v1/mine" -d '{"length":2,"delta":1}' > /dev/null \
  || { echo "FAIL: snapshot-cached levels stopped serving with a worker down"; exit 1; }
# Level 3 is not materialized yet, so this must reach the dead shard —
# and come back as a clean 503 once the retry budget is spent.
code=$(curl -s -o "$workdir/unavail.json" -w '%{http_code}' "$basec/v1/mine" -d '{"length":3,"delta":1}')
[ "$code" = 503 ] \
  || { echo "FAIL: dead worker produced HTTP $code, want 503: $(cat "$workdir/unavail.json")"; exit 1; }
grep -qi "unavailable" "$workdir/unavail.json" \
  || { echo "FAIL: 503 body does not name the condition: $(cat "$workdir/unavail.json")"; exit 1; }
for i in $(seq 1 50); do
  if curl -sf "$basec/healthz" 2>/dev/null | jq -e '.workers[1].healthy == false' > /dev/null 2>&1; then
    break
  fi
  sleep 0.2
done
curl -sf "$basec/healthz" | jq -e '.workers[1].healthy == false' > /dev/null \
  || { echo "FAIL: dead worker still reported healthy"; exit 1; }

echo "== restarted worker: fleet recovers, results still byte-identical"
"$workdir/bin/skinnymined" -worker "$shard1" -addr "127.0.0.1:$wport1" \
  > "$workdir/worker1b.log" 2>&1 &
worker1_pid=$!
for i in $(seq 1 50); do
  if curl -sf "$basec/healthz" 2>/dev/null | jq -e '[.workers[].healthy] | all' > /dev/null 2>&1; then
    break
  fi
  sleep 0.2
done
"$workdir/bin/skinnymine" -input "$workdir/graphdb.txt" -support 2 -length 3 -delta 1 \
  -json > "$workdir/db-l3.json"
curl -sf "$basec/v1/mine" -d '{"length":3,"delta":1}' > "$workdir/dist-l3.json" \
  || { echo "FAIL: request still failing after worker recovery"; exit 1; }
diff <(jq "$norm" "$workdir/db-l3.json") <(jq "$norm" "$workdir/dist-l3.json") \
  || { echo "FAIL: post-recovery distributed result differs from the CLI's"; exit 1; }

echo "== request ID flows coordinator -> worker logs"
# Level 5 is not materialized yet, so this request must fan out to the
# fleet — the supplied ID has to appear in the coordinator's access line
# AND in each worker's candidates line.
curl -sf -H 'X-Request-Id: smoke-dist-rid' "$basec/v1/mine" -d '{"length":5,"delta":1}' > /dev/null \
  || { echo "FAIL: level-5 request failed"; exit 1; }
for i in $(seq 1 20); do
  if grep -q smoke-dist-rid "$workdir/coord.log" \
     && grep -q smoke-dist-rid "$workdir/worker0.log" \
     && grep -q smoke-dist-rid "$workdir/worker1b.log"; then
    break
  fi
  sleep 0.1
done
grep -q smoke-dist-rid "$workdir/coord.log" \
  || { echo "FAIL: request ID missing from the coordinator log"; exit 1; }
grep -q smoke-dist-rid "$workdir/worker0.log" \
  || { echo "FAIL: request ID missing from worker 0's log"; exit 1; }
grep -q smoke-dist-rid "$workdir/worker1b.log" \
  || { echo "FAIL: request ID missing from worker 1's log"; exit 1; }

echo "== coordinator /metrics exposes per-worker RPC counters"
curl -sf "$basec/metrics" > "$workdir/metricsc.json"
jq -e '(.workers | length) == 2 and ([.workers[].requests] | add) > 0
       and ([.workers[].latency_ms.count] | add) > 0' "$workdir/metricsc.json" > /dev/null \
  || { echo "FAIL: coordinator worker metrics say $(jq '.workers' "$workdir/metricsc.json")"; exit 1; }

echo "== stitched distributed trace: tracing on is byte-identical, /debug/traces has worker spans"
# Level 6 is not materialized, so this traced mine must fan out to the
# fleet with the span opt-in header set — and still produce the exact
# bytes the in-process CLI does.
"$workdir/bin/skinnymine" -input "$workdir/graphdb.txt" -support 2 -length 6 -delta 1 \
  -json > "$workdir/db-l6.json"
curl -sf -H 'X-Request-Id: smoke-stitch-rid' "$basec/v1/mine?trace=1" \
  -d '{"length":6,"delta":1}' > "$workdir/stitch-trace.json" \
  || { echo "FAIL: traced distributed mine failed"; exit 1; }
jq -e '.source == "mined" and .trace_id == "smoke-stitch-rid"' "$workdir/stitch-trace.json" > /dev/null \
  || { echo "FAIL: stitched trace response says $(jq '{source,trace_id}' "$workdir/stitch-trace.json")"; exit 1; }
diff <(jq "$norm" "$workdir/db-l6.json") <(jq ".result | $norm" "$workdir/stitch-trace.json") \
  || { echo "FAIL: tracing changed the distributed result bytes"; exit 1; }
curl -sf "$basec/debug/traces?id=smoke-stitch-rid" > "$workdir/stitch-detail.json" \
  || { echo "FAIL: /debug/traces?id= lookup failed"; exit 1; }
jq -e '.workers == 2
       and ([.. | objects | select(has("start_us"))] | length > 0
            and all(.start_us >= 0 and .duration_us >= 0))
       and ([.spans[] | recurse(.children[]?) | select(.name == "worker.rpc")
             | .children[]? | recurse(.children[]?) | .name]
            | index("worker.stage1") != null)' \
  "$workdir/stitch-detail.json" > /dev/null \
  || { echo "FAIL: stitched span tree says $(cat "$workdir/stitch-detail.json")"; exit 1; }
curl -sf "$basec/debug/traces" | jq -e '[.traces[].id] | index("smoke-stitch-rid") != null' > /dev/null \
  || { echo "FAIL: /debug/traces listing lacks the stitched run"; exit 1; }

echo "== skinnytop -once renders the fleet"
"$workdir/bin/skinnytop" -once "127.0.0.1:$cport" "127.0.0.1:$wport0" > "$workdir/top.txt" \
  || { echo "FAIL: skinnytop -once exited non-zero"; exit 1; }
grep -q '\[daemon\]' "$workdir/top.txt" \
  || { echo "FAIL: skinnytop did not classify the coordinator: $(cat "$workdir/top.txt")"; exit 1; }
grep -q '\[worker\]' "$workdir/top.txt" \
  || { echo "FAIL: skinnytop did not classify the worker: $(cat "$workdir/top.txt")"; exit 1; }
grep -q 'qps' "$workdir/top.txt" \
  || { echo "FAIL: skinnytop output lacks the rate header: $(cat "$workdir/top.txt")"; exit 1; }
grep -q 'smoke-stitch-rid' "$workdir/top.txt" \
  || { echo "FAIL: skinnytop trace panel lacks the stitched run: $(cat "$workdir/top.txt")"; exit 1; }

echo "== graceful shutdown"
kill -TERM "$coord_pid"
wait "$coord_pid" || { echo "FAIL: coordinator exited non-zero"; exit 1; }
coord_pid=""
kill -TERM "$worker0_pid"
wait "$worker0_pid" || { echo "FAIL: worker exited non-zero"; exit 1; }
worker0_pid=""
kill -TERM "$worker1_pid"
wait "$worker1_pid" || { echo "FAIL: restarted worker exited non-zero"; exit 1; }
worker1_pid=""
kill -TERM "$daemon2_pid"
wait "$daemon2_pid" || { echo "FAIL: sharded daemon exited non-zero"; exit 1; }
daemon2_pid=""
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: daemon exited non-zero"; exit 1; }
daemon_pid=""

echo "PASS"
