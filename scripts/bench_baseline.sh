#!/usr/bin/env bash
# bench_baseline.sh — run the mine benchmarks with -benchmem and emit a
# JSON summary (time/op, bytes/op, allocs/op per benchmark) so the bench
# trajectory has machine-readable data points per PR.
#
#   ./scripts/bench_baseline.sh [out.json]
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 1x: one full mine per
#               variant; raise to 3x/1s locally for tighter numbers)
#   BENCH_RE    benchmark regexp (default ^BenchmarkMineConcurrency)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_pr3.json}
BENCHTIME=${BENCHTIME:-1x}
BENCH_RE=${BENCH_RE:-^BenchmarkMineConcurrency}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH_RE" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
      if ($(i+1) == "ns/op") ns = $i
      if ($(i+1) == "B/op") bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    rows[++n] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                        name, iters, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    printf "  ]\n}\n"
  }
' "$RAW" > "$OUT"

echo "wrote $OUT"
