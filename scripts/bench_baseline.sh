#!/usr/bin/env bash
# bench_baseline.sh — run the mine benchmarks with -benchmem and emit a
# JSON summary (time/op, bytes/op, allocs/op and any extensions/op
# custom metric per benchmark) so the bench trajectory has
# machine-readable data points per PR.
#
#   ./scripts/bench_baseline.sh [pr-number | out.json]
#
# A bare number N writes BENCH_prN.json; any other argument is taken as
# the output filename verbatim. With no argument the PR number is
# inferred as one past the highest committed BENCH_pr*.json snapshot,
# so a fresh branch gets the right name without editing anything. CI
# passes the name explicitly so the uploaded artifact and the committed
# snapshot share one recipe.
#
# Two suites run: the root mining benchmarks (concurrency scaling, the
# constrained-mine pushdown pair, and the sharded-vs-unsharded curve)
# and the serving benchmarks in internal/server (one batch call vs N
# sequential /v1/mine round trips over the same requests, plus the
# query-family pair: shared-plan execution on vs off over one batch of
# eight family members — extensions/op is the number to watch there).
#
# Environment:
#   BENCHTIME        go test -benchtime value (default 1x: one full mine
#                    per variant; raise to 3x/1s locally for tighter
#                    numbers)
#   BENCH_RE         root benchmark regexp (default: concurrency,
#                    constrained, sharded)
#   BENCH_SERVER_RE  server benchmark regexp (default: the batch pair)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-}
if [[ -z "$OUT" ]]; then
  last=$(ls BENCH_pr*.json 2>/dev/null | sed -E 's/^BENCH_pr([0-9]+)\.json$/\1/' | sort -n | tail -1)
  OUT="BENCH_pr$(( ${last:-0} + 1 )).json"
elif [[ "$OUT" =~ ^[0-9]+$ ]]; then
  OUT="BENCH_pr${OUT}.json"
fi
BENCHTIME=${BENCHTIME:-1x}
BENCH_RE=${BENCH_RE:-'^BenchmarkMine(Concurrency|Constrained|Sharded)'}
BENCH_SERVER_RE=${BENCH_SERVER_RE:-'^Benchmark(Server(Sequential|Batch)|BatchFamily)'}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH_RE" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"
go test -run '^$' -bench "$BENCH_SERVER_RE" -benchmem -benchtime "$BENCHTIME" ./internal/server | tee -a "$RAW"

awk -v benchtime="$BENCHTIME" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; ext = ""
    for (i = 3; i < NF; i++) {
      if ($(i+1) == "ns/op") ns = $i
      if ($(i+1) == "B/op") bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
      if ($(i+1) == "extensions/op") ext = $i
    }
    rows[++n] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"extensions_per_op\": %s}",
                        name, iters, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs, ext == "" ? "null" : ext)
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    printf "  ]\n}\n"
  }
' "$RAW" > "$OUT"

echo "wrote $OUT"
