#!/usr/bin/env bash
# check_docs.sh — documentation gate, run by CI:
#
#   1. Every package under internal/ (and the root package) must carry
#      package documentation: a `// Package <name> ...` doc comment in
#      some non-test Go file.
#   2. Every relative markdown link in the repo's documentation set
#      (README.md, ARCHITECTURE.md, CHANGES.md, ROADMAP.md and any
#      markdown under examples/) must point at a file or directory that
#      exists.
#
# Exits non-zero with one line per violation.
set -uo pipefail

cd "$(dirname "$0")/.."
fail=0

echo "== package documentation"
# Every library package — the root package and everything under
# internal/ — must carry a `// Package ...` doc comment (cmd/ and
# examples/ main packages use the `// Command ...` / walkthrough style
# and document themselves in the README instead).
while IFS= read -r dir; do
  pkgfiles=$(find "$dir" -maxdepth 1 -name '*.go' ! -name '*_test.go')
  [ -z "$pkgfiles" ] && continue
  if ! grep -l '^// Package ' $pkgfiles > /dev/null 2>&1; then
    echo "MISSING package doc: $dir"
    fail=1
  fi
done < <({ echo .; find internal -type d; } | sort -u)

echo "== markdown links"
docs=$(ls README.md ARCHITECTURE.md CHANGES.md ROADMAP.md 2>/dev/null; find examples -name '*.md' 2>/dev/null)
for doc in $docs; do
  dir=$(dirname "$doc")
  # Extract ](target) link targets; keep relative ones (skip URLs and
  # pure in-page anchors), strip any #fragment.
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN link in $doc: $target"
      fail=1
    fi
  done < <(grep -o ']([^)]*)' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "FAIL: documentation check"
  exit 1
fi
echo "PASS"
